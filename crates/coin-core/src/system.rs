//! The assembled COIN system.
//!
//! [`CoinSystem`] is the deployment unit of Figure 1: a registry of
//! sources (behind wrappers), context theories, elevation axioms, the
//! shared domain model and conversion functions, a context mediator, and
//! the multi-database access engine. Receivers hand it SQL plus their
//! context name; it returns mediated, executed answers.

use std::collections::BTreeMap;

use coin_planner::{Dictionary, Planner, PlannerConfig};
use coin_rel::{Catalog, Table};
use coin_sql::normalize::SchemaLookup;
use coin_sql::{ColumnRef, Expr, OrderItem, Query, Select, SelectItem, TableRef};

use crate::mediate::{Mediated, MediationError, Mediator};
use crate::model::{
    ContextTheory, Conversion, ConversionRegistry, DomainModel, Elevation, ElevationRegistry,
    ModelError,
};

/// Unified error type for the system façade.
#[derive(Debug)]
pub enum CoinError {
    Model(ModelError),
    Mediation(MediationError),
    Plan(coin_planner::PlanError),
    Engine(coin_rel::EngineError),
    Dict(coin_planner::DictError),
    Sql(coin_sql::SqlError),
    Unsupported(String),
}

impl std::fmt::Display for CoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoinError::Model(e) => write!(f, "{e}"),
            CoinError::Mediation(e) => write!(f, "{e}"),
            CoinError::Plan(e) => write!(f, "{e}"),
            CoinError::Engine(e) => write!(f, "{e}"),
            CoinError::Dict(e) => write!(f, "{e}"),
            CoinError::Sql(e) => write!(f, "{e}"),
            CoinError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for CoinError {}

impl From<ModelError> for CoinError {
    fn from(e: ModelError) -> Self {
        CoinError::Model(e)
    }
}
impl From<MediationError> for CoinError {
    fn from(e: MediationError) -> Self {
        CoinError::Mediation(e)
    }
}
impl From<coin_planner::PlanError> for CoinError {
    fn from(e: coin_planner::PlanError) -> Self {
        CoinError::Plan(e)
    }
}
impl From<coin_rel::EngineError> for CoinError {
    fn from(e: coin_rel::EngineError) -> Self {
        CoinError::Engine(e)
    }
}
impl From<coin_planner::DictError> for CoinError {
    fn from(e: coin_planner::DictError) -> Self {
        CoinError::Dict(e)
    }
}
impl From<coin_sql::SqlError> for CoinError {
    fn from(e: coin_sql::SqlError) -> Self {
        CoinError::Sql(e)
    }
}
impl From<coin_sql::NormalizeError> for CoinError {
    fn from(e: coin_sql::NormalizeError) -> Self {
        CoinError::Mediation(MediationError::Normalize(e))
    }
}

/// The result of a mediated query: the answer plus full provenance.
#[derive(Debug)]
pub struct MediatedAnswer {
    pub table: Table,
    pub mediated: Mediated,
    pub stats: coin_planner::ExecStats,
}

/// The assembled system.
pub struct CoinSystem {
    pub domain: DomainModel,
    pub conversions: ConversionRegistry,
    pub contexts: BTreeMap<String, ContextTheory>,
    pub elevations: ElevationRegistry,
    pub planner: Planner,
}

impl CoinSystem {
    /// An empty system over a domain model.
    pub fn new(domain: DomainModel) -> CoinSystem {
        CoinSystem {
            domain,
            conversions: ConversionRegistry::new(),
            contexts: BTreeMap::new(),
            elevations: ElevationRegistry::new(),
            planner: Planner::new(Dictionary::new()),
        }
    }

    pub fn with_planner_config(mut self, config: PlannerConfig) -> CoinSystem {
        self.planner.config = config;
        self
    }

    /// Register a source (its tables become queryable).
    pub fn add_source<S: coin_wrapper::Source + 'static>(
        &mut self,
        source: S,
    ) -> Result<(), CoinError> {
        self.planner.dictionary.register_source(source)?;
        Ok(())
    }

    /// Register a context theory. Adding a source+context is the *only*
    /// administration needed to join the system (extensibility claim).
    pub fn add_context(&mut self, ctx: ContextTheory) -> Result<(), CoinError> {
        ctx.validate(&self.domain)?;
        if self.contexts.contains_key(&ctx.name) {
            return Err(ModelError::DuplicateContext(ctx.name).into());
        }
        self.contexts.insert(ctx.name.clone(), ctx);
        Ok(())
    }

    /// Register elevation axioms for a relation.
    pub fn add_elevation(&mut self, e: Elevation) -> Result<(), CoinError> {
        if !self.contexts.contains_key(&e.context) {
            return Err(ModelError::UnknownContext(e.context.clone()).into());
        }
        for (_, ty) in e.columns() {
            self.domain.get(ty)?;
        }
        self.elevations.add(e)?;
        Ok(())
    }

    /// Register a conversion function for a modifier.
    pub fn add_conversion(&mut self, modifier: &str, conversion: Conversion) {
        self.conversions.set(modifier, conversion);
    }

    /// The schema dictionary (receiver-visible).
    pub fn dictionary(&self) -> &Dictionary {
        &self.planner.dictionary
    }

    /// Total number of context/elevation axioms administered in the system
    /// — the scalability metric (EX-SCALE): grows O(n) in the number of
    /// sources, vs O(n²) for pairwise a-priori integration.
    pub fn axiom_count(&self) -> usize {
        self.contexts
            .values()
            .map(ContextTheory::axiom_count)
            .sum::<usize>()
            + self
                .elevations
                .iter()
                .map(Elevation::axiom_count)
                .sum::<usize>()
    }

    fn mediator(&self) -> Mediator<'_> {
        Mediator::new(
            &self.domain,
            &self.conversions,
            &self.contexts,
            &self.elevations,
        )
    }

    /// Mediate SQL posed in `receiver` context without executing it.
    pub fn mediate(&self, sql: &str, receiver: &str) -> Result<Mediated, CoinError> {
        let q = coin_sql::parse_query(sql)?;
        let Query::Select(s) = q else {
            return Err(CoinError::Unsupported(
                "mediation input must be a single SELECT".into(),
            ));
        };
        let (core, _outer) = split_outer(&s, self.dictionary())?;
        Ok(self
            .mediator()
            .mediate_select(&core, receiver, self.dictionary())?)
    }

    /// The full pipeline: mediate, plan, execute, and (if the receiver's
    /// query had aggregation/ordering above the conjunctive core) apply the
    /// outer operations over the mediated result.
    pub fn query(&self, sql: &str, receiver: &str) -> Result<MediatedAnswer, CoinError> {
        let q = coin_sql::parse_query(sql)?;
        let Query::Select(s) = q else {
            return Err(CoinError::Unsupported(
                "receiver queries are single SELECT blocks".into(),
            ));
        };
        let (core, outer) = split_outer(&s, self.dictionary())?;
        let mediated = self
            .mediator()
            .mediate_select(&core, receiver, self.dictionary())?;
        let (table, stats) = self.planner.execute_query(&mediated.query)?;
        let table = match outer {
            None => table,
            Some(outer) => {
                // Execute the outer block over the staged mediated result.
                let staged = Table {
                    name: "mediated".into(),
                    schema: table.schema.clone(),
                    rows: table.rows,
                };
                let catalog = Catalog::new().with_table(staged);
                coin_rel::execute_select(&outer, &catalog)?
            }
        };
        Ok(MediatedAnswer {
            table,
            mediated,
            stats,
        })
    }

    /// Execute without mediation (the naive baseline of §3 that returns the
    /// "incorrect" answer).
    pub fn query_naive(&self, sql: &str) -> Result<(Table, coin_planner::ExecStats), CoinError> {
        Ok(self.planner.run_sql(sql)?)
    }
}

/// Split a receiver query into its conjunctive core (to be mediated) and an
/// optional outer block (aggregation / ordering / distinct / limit) applied
/// over the mediated result.
///
/// The core projects every column referenced anywhere in the query, aliased
/// `m0, m1, …`; the outer block re-expresses the original items over those
/// aliases against the staged table `mediated`.
fn split_outer(
    s: &Select,
    schema: &dyn SchemaLookup,
) -> Result<(Select, Option<Select>), CoinError> {
    let needs_outer = !s.group_by.is_empty()
        || s.having.is_some()
        || !s.order_by.is_empty()
        || s.limit.is_some()
        || s.distinct
        || s.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.has_aggregate(),
            _ => false,
        });
    if !needs_outer {
        return Ok((s.clone(), None));
    }

    // Normalize first so column references are qualified and unambiguous.
    let s = coin_sql::normalize_select(s, schema)?;

    // Columns referenced anywhere.
    let mut cols: Vec<&ColumnRef> = Vec::new();
    for item in &s.items {
        if let SelectItem::Expr { expr, .. } = item {
            expr.columns(&mut cols);
        }
    }
    for g in &s.group_by {
        g.columns(&mut cols);
    }
    if let Some(h) = &s.having {
        h.columns(&mut cols);
    }
    for o in &s.order_by {
        o.expr.columns(&mut cols);
    }
    let mut distinct_cols: Vec<ColumnRef> = Vec::new();
    for c in cols {
        if !distinct_cols.contains(c) {
            distinct_cols.push(c.clone());
        }
    }
    if distinct_cols.is_empty() {
        return Err(CoinError::Unsupported(
            "aggregation query references no columns".into(),
        ));
    }

    // Core: SELECT each referenced column AS m<i>, same FROM/WHERE.
    let core_items: Vec<SelectItem> = distinct_cols
        .iter()
        .enumerate()
        .map(|(i, c)| SelectItem::Expr {
            expr: Expr::Column(c.clone()),
            alias: Some(format!("m{i}")),
        })
        .collect();
    let core = Select {
        items: core_items,
        from: s.from.clone(),
        where_clause: s.where_clause.clone(),
        ..Default::default()
    };

    // Outer: original items/group/having/order with columns renamed to the
    // staged aliases, FROM the staged `mediated` table.
    let rename: BTreeMap<ColumnRef, ColumnRef> = distinct_cols
        .iter()
        .enumerate()
        .map(|(i, c)| (c.clone(), ColumnRef::bare(&format!("m{i}"))))
        .collect();
    let outer = Select {
        distinct: s.distinct,
        items: s
            .items
            .iter()
            .map(|item| match item {
                SelectItem::Expr { expr, alias } => {
                    // Keep the receiver-visible column name: a bare column
                    // item stays named after the original column, not the
                    // internal staging alias.
                    let alias = alias.clone().or_else(|| match expr {
                        Expr::Column(c) => Some(c.column.clone()),
                        _ => None,
                    });
                    SelectItem::Expr {
                        expr: rename_columns(expr, &rename),
                        alias,
                    }
                }
                other => other.clone(),
            })
            .collect(),
        from: vec![TableRef::new("mediated")],
        where_clause: None,
        group_by: s
            .group_by
            .iter()
            .map(|g| rename_columns(g, &rename))
            .collect(),
        having: s.having.as_ref().map(|h| rename_columns(h, &rename)),
        order_by: s
            .order_by
            .iter()
            .map(|o| OrderItem {
                expr: rename_columns(&o.expr, &rename),
                desc: o.desc,
            })
            .collect(),
        limit: s.limit,
    };
    Ok((core, Some(outer)))
}

/// Rename column references per the mapping (leaves other leaves intact).
fn rename_columns(e: &Expr, map: &BTreeMap<ColumnRef, ColumnRef>) -> Expr {
    match e {
        Expr::Column(c) => Expr::Column(map.get(c).cloned().unwrap_or_else(|| c.clone())),
        Expr::Bin(l, op, r) => Expr::Bin(
            Box::new(rename_columns(l, map)),
            *op,
            Box::new(rename_columns(r, map)),
        ),
        Expr::Un(op, inner) => Expr::Un(*op, Box::new(rename_columns(inner, map))),
        Expr::Func(f, args) => Expr::Func(
            f.clone(),
            args.iter().map(|a| rename_columns(a, map)).collect(),
        ),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(rename_columns(expr, map)),
            low: Box::new(rename_columns(low, map)),
            high: Box::new(rename_columns(high, map)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rename_columns(expr, map)),
            list: list.iter().map(|a| rename_columns(a, map)).collect(),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rename_columns(expr, map)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rename_columns(expr, map)),
            negated: *negated,
        },
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(rename_columns(o, map))),
            branches: branches
                .iter()
                .map(|(c, v)| (rename_columns(c, map), rename_columns(v, map)))
                .collect(),
            else_branch: else_branch
                .as_ref()
                .map(|o| Box::new(rename_columns(o, map))),
        },
        leaf => leaf.clone(),
    }
}
