//! Differential testing of the Pike VM against a naive set-of-endpoints
//! oracle over a structured pattern generator.

use coin_pattern::Pattern;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A structured mini-pattern that renders to regex syntax and can be
/// matched by an obviously-correct (if slow) closure computation.
#[derive(Debug, Clone)]
enum P {
    Lit(char),
    Dot,
    Class(Vec<char>, bool),
    Cat(Box<P>, Box<P>),
    Alt(Box<P>, Box<P>),
    Star(Box<P>),
    Plus(Box<P>),
    Opt(Box<P>),
    Group(Box<P>),
}

impl P {
    fn render(&self) -> String {
        match self {
            P::Lit(c) => c.to_string(),
            P::Dot => ".".into(),
            P::Class(cs, neg) => {
                let body: String = cs.iter().collect();
                format!("[{}{}]", if *neg { "^" } else { "" }, body)
            }
            P::Cat(a, b) => format!("{}{}", a.render(), b.render()),
            P::Alt(a, b) => format!("(?:{}|{})", a.render(), b.render()),
            P::Star(a) => format!("(?:{})*", a.render()),
            P::Plus(a) => format!("(?:{})+", a.render()),
            P::Opt(a) => format!("(?:{})?", a.render()),
            P::Group(a) => format!("({})", a.render()),
        }
    }

    /// All end positions of matches starting at `i`.
    fn ends(&self, text: &[char], i: usize) -> BTreeSet<usize> {
        match self {
            P::Lit(c) => {
                if text.get(i) == Some(c) {
                    [i + 1].into()
                } else {
                    BTreeSet::new()
                }
            }
            P::Dot => {
                if i < text.len() && text[i] != '\n' {
                    [i + 1].into()
                } else {
                    BTreeSet::new()
                }
            }
            P::Class(cs, neg) => match text.get(i) {
                Some(c) if cs.contains(c) != *neg => [i + 1].into(),
                _ => BTreeSet::new(),
            },
            P::Cat(a, b) => a
                .ends(text, i)
                .into_iter()
                .flat_map(|m| b.ends(text, m))
                .collect(),
            P::Alt(a, b) => {
                let mut s = a.ends(text, i);
                s.extend(b.ends(text, i));
                s
            }
            P::Star(a) => {
                let mut closed: BTreeSet<usize> = [i].into();
                loop {
                    let next: BTreeSet<usize> =
                        closed.iter().flat_map(|&m| a.ends(text, m)).collect();
                    let before = closed.len();
                    closed.extend(next);
                    if closed.len() == before {
                        return closed;
                    }
                }
            }
            P::Plus(a) => {
                // a+ == a a*
                a.ends(text, i)
                    .into_iter()
                    .flat_map(|m| P::Star(a.clone()).ends(text, m))
                    .collect()
            }
            P::Opt(a) => {
                let mut s = a.ends(text, i);
                s.insert(i);
                s
            }
            P::Group(a) => a.ends(text, i),
        }
    }

    fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        (0..=chars.len()).any(|i| !self.ends(&chars, i).is_empty())
    }
}

fn arb_pattern() -> impl Strategy<Value = P> {
    let leaf = prop_oneof![
        prop_oneof![Just('a'), Just('b'), Just('c')].prop_map(P::Lit),
        Just(P::Dot),
        (
            prop::collection::vec(prop_oneof![Just('a'), Just('b'), Just('c')], 1..3),
            any::<bool>()
        )
            .prop_map(|(cs, neg)| P::Class(cs, neg)),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| P::Cat(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| P::Alt(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| P::Star(Box::new(a))),
            inner.clone().prop_map(|a| P::Plus(Box::new(a))),
            inner.clone().prop_map(|a| P::Opt(Box::new(a))),
            inner.prop_map(|a| P::Group(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 512,
        // CI determinism: never read or write regression files.
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// The Pike VM and the oracle agree on match/no-match.
    #[test]
    fn vm_agrees_with_oracle(p in arb_pattern(), text in "[abc]{0,8}") {
        let rendered = p.render();
        let compiled = Pattern::new(&rendered)
            .unwrap_or_else(|e| panic!("generated pattern {rendered:?} failed to compile: {e}"));
        prop_assert_eq!(
            compiled.is_match(&text),
            p.is_match(&text),
            "pattern: {} text: {:?}",
            rendered,
            text
        );
    }

    /// Whatever group 0 reports must be a real substring occurrence and an
    /// oracle-accepted match.
    #[test]
    fn reported_span_is_valid(p in arb_pattern(), text in "[abc]{0,8}") {
        let rendered = p.render();
        let compiled = Pattern::new(&rendered).unwrap();
        if let Some(caps) = compiled.captures(&text) {
            let (s, e) = caps.span(0).unwrap();
            let chars: Vec<char> = text.chars().collect();
            prop_assert!(s <= e && e <= chars.len());
            prop_assert!(p.ends(&chars, s).contains(&e),
                "span ({s},{e}) not oracle-validated for {} on {:?}", rendered, text);
        }
    }
}
