//! # coin-pattern — the regular-expression engine of the web wrapper
//!
//! The COIN web wrapping technology \[Qu96\] specifies "regular expressions
//! corresponding to what information is located on a page" (paper §2). This
//! crate implements the pattern language those specifications use: a
//! self-contained regex engine with capture groups (including named groups,
//! which wrapper specs bind to exported relation columns), compiled to a
//! Thompson NFA and executed by a Pike VM in linear time.
//!
//! ```
//! use coin_pattern::Pattern;
//!
//! let p = Pattern::new(r"(?P<from>[A-Z]{3})->(?P<to>[A-Z]{3}):\s*(?P<rate>\d+\.\d+)").unwrap();
//! let caps = p.captures("JPY->USD: 0.0096").unwrap();
//! assert_eq!(caps.name("from"), Some("JPY"));
//! assert_eq!(caps.name("rate"), Some("0.0096"));
//! ```

mod ast;
mod vm;

pub use ast::PatternError;

use vm::{compile, pike_search, Inst};

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct Pattern {
    source: String,
    prog: Vec<Inst>,
    nslots: usize,
    names: Vec<(String, u32)>,
    group_count: u32,
}

impl Pattern {
    /// Compile a pattern.
    pub fn new(source: &str) -> Result<Pattern, PatternError> {
        let parsed = ast::parse(source)?;
        let prog = compile(&parsed.ast, parsed.group_count);
        Ok(Pattern {
            source: source.to_owned(),
            prog,
            nslots: 2 * (parsed.group_count as usize + 1),
            names: parsed.group_names,
            group_count: parsed.group_count,
        })
    }

    /// The pattern source text.
    pub fn as_str(&self) -> &str {
        &self.source
    }

    /// Number of capture groups (excluding group 0).
    pub fn group_count(&self) -> u32 {
        self.group_count
    }

    /// Names of the named groups, in declaration order.
    pub fn group_names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|(n, _)| n.as_str())
    }

    /// Does the pattern match anywhere in `text`?
    pub fn is_match(&self, text: &str) -> bool {
        self.captures(text).is_some()
    }

    /// Leftmost-first match with capture groups.
    pub fn captures<'t>(&self, text: &'t str) -> Option<Captures<'t>> {
        self.captures_at(text, 0)
    }

    /// Like [`Pattern::captures`], starting the search at char index
    /// `start`.
    pub fn captures_at<'t>(&self, text: &'t str, start: usize) -> Option<Captures<'t>> {
        let chars: Vec<char> = text.chars().collect();
        if start > chars.len() {
            return None;
        }
        // Byte offset of each char index (plus the end sentinel).
        let mut byte_offsets: Vec<usize> = Vec::with_capacity(chars.len() + 1);
        let mut off = 0;
        for c in &chars {
            byte_offsets.push(off);
            off += c.len_utf8();
        }
        byte_offsets.push(off);
        let slots = pike_search(&self.prog, self.nslots, &chars, start)?;
        Some(Captures {
            text,
            byte_offsets,
            slots,
            names: self.names.clone(),
        })
    }

    /// Iterate over non-overlapping matches, left to right.
    pub fn find_iter<'p, 't>(&'p self, text: &'t str) -> Matches<'p, 't> {
        Matches {
            pattern: self,
            text,
            next_start: 0,
            done: false,
        }
    }
}

/// The capture groups of one match.
#[derive(Debug, Clone)]
pub struct Captures<'t> {
    text: &'t str,
    byte_offsets: Vec<usize>,
    slots: Vec<Option<usize>>,
    names: Vec<(String, u32)>,
}

impl<'t> Captures<'t> {
    /// The text of capture group `i` (0 is the whole match). `None` if the
    /// group did not participate in the match.
    pub fn get(&self, i: usize) -> Option<&'t str> {
        let (s, e) = self.span(i)?;
        Some(&self.text[self.byte_offsets[s]..self.byte_offsets[e]])
    }

    /// Char-index span of group `i`.
    pub fn span(&self, i: usize) -> Option<(usize, usize)> {
        let s = *self.slots.get(2 * i)?;
        let e = *self.slots.get(2 * i + 1)?;
        Some((s?, e?))
    }

    /// Text of a named group.
    pub fn name(&self, name: &str) -> Option<&'t str> {
        let (_, idx) = self.names.iter().find(|(n, _)| n == name)?;
        self.get(*idx as usize)
    }

    /// The whole match text.
    pub fn matched(&self) -> &'t str {
        self.get(0).expect("group 0 always participates")
    }

    /// Number of groups (including group 0).
    pub fn len(&self) -> usize {
        self.slots.len() / 2
    }

    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Iterator over non-overlapping matches.
pub struct Matches<'p, 't> {
    pattern: &'p Pattern,
    text: &'t str,
    next_start: usize,
    done: bool,
}

impl<'t> Iterator for Matches<'_, 't> {
    type Item = Captures<'t>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let caps = self.pattern.captures_at(self.text, self.next_start)?;
        let (start, end) = caps.span(0).unwrap();
        if end == start {
            // Empty match: advance one char to guarantee progress.
            self.next_start = start + 1;
        } else {
            self.next_start = end;
        }
        if self.next_start > self.text.chars().count() {
            self.done = true;
        }
        Some(caps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_match_and_groups() {
        let p = Pattern::new(r"(\w+)@(\w+)").unwrap();
        let c = p.captures("mail: context@mit edu").unwrap();
        assert_eq!(c.matched(), "context@mit");
        assert_eq!(c.get(1), Some("context"));
        assert_eq!(c.get(2), Some("mit"));
    }

    #[test]
    fn named_groups() {
        let p = Pattern::new(r"(?P<k>\w+)=(?P<v>\d+)").unwrap();
        let c = p.captures("x=42").unwrap();
        assert_eq!(c.name("k"), Some("x"));
        assert_eq!(c.name("v"), Some("42"));
        assert_eq!(c.name("zzz"), None);
    }

    #[test]
    fn alternation_priority() {
        // Leftmost-first: the first alternative wins at the same position.
        let p = Pattern::new("ab|abc").unwrap();
        assert_eq!(p.captures("abc").unwrap().matched(), "ab");
        let q = Pattern::new("abc|ab").unwrap();
        assert_eq!(q.captures("abc").unwrap().matched(), "abc");
    }

    #[test]
    fn optional_group_is_none() {
        let p = Pattern::new(r"a(b)?c").unwrap();
        let c = p.captures("ac").unwrap();
        assert_eq!(c.get(1), None);
        let c2 = p.captures("abc").unwrap();
        assert_eq!(c2.get(1), Some("b"));
    }

    #[test]
    fn find_iter_non_overlapping() {
        let p = Pattern::new(r"\d+").unwrap();
        let nums: Vec<&str> = p.find_iter("a1 bb22 ccc333").map(|c| c.matched()).collect();
        assert_eq!(nums, vec!["1", "22", "333"]);
    }

    #[test]
    fn find_iter_empty_matches_progress() {
        let p = Pattern::new("x*").unwrap();
        let n = p.find_iter("abc").count();
        assert_eq!(n, 4); // empty match at each position incl. end
    }

    #[test]
    fn unicode_text() {
        let p = Pattern::new("通貨=(?P<c>[A-Z]+)").unwrap();
        let c = p.captures("レート 通貨=JPY").unwrap();
        assert_eq!(c.name("c"), Some("JPY"));
    }

    #[test]
    fn html_extraction_pattern() {
        // The wrapper-style pattern from a rates page.
        let p = Pattern::new(
            r"<td>(?P<from>[A-Z]{3})</td><td>(?P<to>[A-Z]{3})</td><td>(?P<rate>[0-9.]+)</td>",
        )
        .unwrap();
        let html = "<tr><td>JPY</td><td>USD</td><td>0.0096</td></tr>";
        let c = p.captures(html).unwrap();
        assert_eq!(c.name("from"), Some("JPY"));
        assert_eq!(c.name("to"), Some("USD"));
        assert_eq!(c.name("rate"), Some("0.0096"));
    }

    #[test]
    fn bounded_repetition() {
        let p = Pattern::new(r"^[A-Z]{3}$").unwrap();
        assert!(p.is_match("USD"));
        assert!(!p.is_match("US"));
        assert!(!p.is_match("USDX"));
    }

    #[test]
    fn dot_excludes_newline() {
        let p = Pattern::new("a.c").unwrap();
        assert!(p.is_match("abc"));
        assert!(!p.is_match("a\nc"));
    }

    #[test]
    fn negated_class() {
        let p = Pattern::new("<[^>]+>").unwrap();
        assert_eq!(p.captures("<td>x</td>").unwrap().matched(), "<td>");
    }

    #[test]
    fn start_of_search_not_string() {
        let p = Pattern::new("^a").unwrap();
        assert!(
            p.captures_at("ba", 1).is_none(),
            "^ anchors to string start"
        );
    }

    #[test]
    fn linear_on_pathological_input() {
        // Would be exponential under a naive backtracker.
        let p = Pattern::new("(a|aa)+$").unwrap();
        let text = format!("{}b", "a".repeat(64));
        assert!(!p.is_match(&text));
    }

    #[test]
    fn group_names_listed() {
        let p = Pattern::new(r"(?P<x>a)(?P<y>b)").unwrap();
        let names: Vec<&str> = p.group_names().collect();
        assert_eq!(names, vec!["x", "y"]);
    }
}
