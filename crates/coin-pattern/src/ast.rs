//! Regex abstract syntax and parser.
//!
//! The wrapper specification language of \[Qu96\] locates information on web
//! pages with regular expressions. This module parses the pattern dialect
//! used by wrapper specs:
//!
//! * literals, `.`, escapes (`\d \D \w \W \s \S`, punctuation escapes);
//! * character classes `[a-z0-9_]`, negated `[^…]`, with escapes inside;
//! * alternation `|`, grouping `(…)`, non-capturing `(?:…)`, named capture
//!   groups `(?P<name>…)`;
//! * quantifiers `* + ? {m} {m,} {m,n}`, each with a lazy variant (`*?` …);
//! * anchors `^` and `$`.

/// A character-class item: a single char or an inclusive range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassItem {
    Single(char),
    Range(char, char),
}

/// Parsed regex AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Ast {
    Empty,
    Literal(char),
    /// `.` — any char except newline.
    Dot,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    Concat(Vec<Ast>),
    Alternate(Vec<Ast>),
    /// Quantified sub-pattern; `lazy` flips match priority.
    Repeat {
        inner: Box<Ast>,
        min: u32,
        max: Option<u32>,
        lazy: bool,
    },
    /// Capturing group with 1-based index and optional name.
    Group {
        index: u32,
        name: Option<String>,
        inner: Box<Ast>,
    },
    /// Non-capturing group.
    NonCapturing(Box<Ast>),
    AnchorStart,
    AnchorEnd,
}

/// Pattern syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    pub message: String,
    pub position: usize,
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pattern error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for PatternError {}

pub(crate) struct ParsedPattern {
    pub ast: Ast,
    pub group_count: u32,
    pub group_names: Vec<(String, u32)>,
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    next_group: u32,
    group_names: Vec<(String, u32)>,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> PatternError {
        PatternError {
            message: msg.into(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// alternation := concat ('|' concat)*
    fn parse_alternate(&mut self) -> Result<Ast, PatternError> {
        let mut branches = vec![self.parse_concat()?];
        while self.eat('|') {
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alternate(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, PatternError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.parse_quantified()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().unwrap(),
            _ => Ast::Concat(parts),
        })
    }

    fn parse_quantified(&mut self) -> Result<Ast, PatternError> {
        let atom = self.parse_atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => {
                let save = self.pos;
                self.bump();
                match self.parse_bounds() {
                    Some(b) => b,
                    None => {
                        // `{` not followed by a valid bound: literal brace.
                        self.pos = save;
                        return Ok(atom);
                    }
                }
            }
            _ => return Ok(atom),
        };
        if let Some(m) = max {
            if m < min {
                return Err(self.err(format!("bad repetition bounds {{{min},{m}}}")));
            }
        }
        if matches!(atom, Ast::AnchorStart | Ast::AnchorEnd) {
            return Err(self.err("cannot quantify an anchor"));
        }
        let lazy = self.eat('?');
        Ok(Ast::Repeat {
            inner: Box::new(atom),
            min,
            max,
            lazy,
        })
    }

    /// Parse `{m}`, `{m,}`, `{m,n}` after the opening brace; `None` if the
    /// text is not a bound spec (caller treats `{` literally).
    fn parse_bounds(&mut self) -> Option<(u32, Option<u32>)> {
        let mut min_s = String::new();
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            min_s.push(self.bump().unwrap());
        }
        if min_s.is_empty() {
            return None;
        }
        let min: u32 = min_s.parse().ok()?;
        if self.eat('}') {
            return Some((min, Some(min)));
        }
        if !self.eat(',') {
            return None;
        }
        let mut max_s = String::new();
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            max_s.push(self.bump().unwrap());
        }
        if !self.eat('}') {
            return None;
        }
        if max_s.is_empty() {
            Some((min, None))
        } else {
            Some((min, Some(max_s.parse().ok()?)))
        }
    }

    fn parse_atom(&mut self) -> Result<Ast, PatternError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some('(') => {
                if self.eat('?') {
                    if self.eat(':') {
                        let inner = self.parse_alternate()?;
                        if !self.eat(')') {
                            return Err(self.err("unclosed group"));
                        }
                        return Ok(Ast::NonCapturing(Box::new(inner)));
                    }
                    if self.eat('P') {
                        if !self.eat('<') {
                            return Err(self.err("expected < after (?P"));
                        }
                        let mut name = String::new();
                        while let Some(c) = self.peek() {
                            if c == '>' {
                                break;
                            }
                            if !(c.is_ascii_alphanumeric() || c == '_') {
                                return Err(self.err(format!("bad group-name char {c:?}")));
                            }
                            name.push(self.bump().unwrap());
                        }
                        if name.is_empty() {
                            return Err(self.err("empty group name"));
                        }
                        if !self.eat('>') {
                            return Err(self.err("unclosed group name"));
                        }
                        if self.group_names.iter().any(|(n, _)| *n == name) {
                            return Err(self.err(format!("duplicate group name {name}")));
                        }
                        self.next_group += 1;
                        let index = self.next_group;
                        self.group_names.push((name.clone(), index));
                        let inner = self.parse_alternate()?;
                        if !self.eat(')') {
                            return Err(self.err("unclosed group"));
                        }
                        return Ok(Ast::Group {
                            index,
                            name: Some(name),
                            inner: Box::new(inner),
                        });
                    }
                    return Err(self.err("unsupported group flavour (?…"));
                }
                self.next_group += 1;
                let index = self.next_group;
                let inner = self.parse_alternate()?;
                if !self.eat(')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(Ast::Group {
                    index,
                    name: None,
                    inner: Box::new(inner),
                })
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Ast::Dot),
            Some('^') => Ok(Ast::AnchorStart),
            Some('$') => Ok(Ast::AnchorEnd),
            Some('\\') => self.parse_escape(),
            Some(c @ ('*' | '+' | '?')) => Err(self.err(format!("dangling quantifier {c:?}"))),
            Some(')') => Err(self.err("unmatched )")),
            Some(c) => Ok(Ast::Literal(c)),
        }
    }

    fn parse_escape(&mut self) -> Result<Ast, PatternError> {
        let Some(c) = self.bump() else {
            return Err(self.err("trailing backslash"));
        };
        Ok(match c {
            'd' => class(false, vec![ClassItem::Range('0', '9')]),
            'D' => class(true, vec![ClassItem::Range('0', '9')]),
            'w' => class(
                false,
                vec![
                    ClassItem::Range('a', 'z'),
                    ClassItem::Range('A', 'Z'),
                    ClassItem::Range('0', '9'),
                    ClassItem::Single('_'),
                ],
            ),
            'W' => class(
                true,
                vec![
                    ClassItem::Range('a', 'z'),
                    ClassItem::Range('A', 'Z'),
                    ClassItem::Range('0', '9'),
                    ClassItem::Single('_'),
                ],
            ),
            's' => class(
                false,
                vec![
                    ClassItem::Single(' '),
                    ClassItem::Single('\t'),
                    ClassItem::Single('\n'),
                    ClassItem::Single('\r'),
                ],
            ),
            'S' => class(
                true,
                vec![
                    ClassItem::Single(' '),
                    ClassItem::Single('\t'),
                    ClassItem::Single('\n'),
                    ClassItem::Single('\r'),
                ],
            ),
            'n' => Ast::Literal('\n'),
            't' => Ast::Literal('\t'),
            'r' => Ast::Literal('\r'),
            c if c.is_ascii_alphanumeric() => return Err(self.err(format!("unknown escape \\{c}"))),
            c => Ast::Literal(c),
        })
    }

    fn parse_class(&mut self) -> Result<Ast, PatternError> {
        let negated = self.eat('^');
        let mut items = Vec::new();
        // A `]` directly after `[` or `[^` is a literal.
        if self.eat(']') {
            items.push(ClassItem::Single(']'));
        }
        loop {
            match self.peek() {
                None => return Err(self.err("unclosed character class")),
                Some(']') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let lo = self.class_char()?;
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&c| c != ']')
                    {
                        self.bump();
                        let hi = self.class_char()?;
                        if hi < lo {
                            return Err(self.err(format!("bad range {lo}-{hi}")));
                        }
                        items.push(ClassItem::Range(lo, hi));
                    } else {
                        items.push(ClassItem::Single(lo));
                    }
                }
            }
        }
        if items.is_empty() {
            return Err(self.err("empty character class"));
        }
        Ok(Ast::Class { negated, items })
    }

    fn class_char(&mut self) -> Result<char, PatternError> {
        match self.bump() {
            None => Err(self.err("unclosed character class")),
            Some('\\') => match self.bump() {
                None => Err(self.err("trailing backslash in class")),
                Some('n') => Ok('\n'),
                Some('t') => Ok('\t'),
                Some('r') => Ok('\r'),
                Some(c) => Ok(c),
            },
            Some(c) => Ok(c),
        }
    }
}

fn class(negated: bool, items: Vec<ClassItem>) -> Ast {
    Ast::Class { negated, items }
}

pub(crate) fn parse(src: &str) -> Result<ParsedPattern, PatternError> {
    let mut p = Parser {
        chars: src.chars().collect(),
        pos: 0,
        next_group: 0,
        group_names: Vec::new(),
    };
    let ast = p.parse_alternate()?;
    if p.pos < p.chars.len() {
        return Err(p.err(format!("unexpected {:?}", p.chars[p.pos])));
    }
    Ok(ParsedPattern {
        ast,
        group_count: p.next_group,
        group_names: p.group_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_concat() {
        let p = parse("abc").unwrap();
        assert_eq!(
            p.ast,
            Ast::Concat(vec![
                Ast::Literal('a'),
                Ast::Literal('b'),
                Ast::Literal('c')
            ])
        );
    }

    #[test]
    fn alternation_groups() {
        let p = parse("a|b|c").unwrap();
        match p.ast {
            Ast::Alternate(bs) => assert_eq!(bs.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn group_numbering() {
        let p = parse("(a)(?:b)((c))").unwrap();
        assert_eq!(p.group_count, 3);
    }

    #[test]
    fn named_groups_recorded() {
        let p = parse(r"(?P<cur>[A-Z]{3}) (?P<rate>\d+)").unwrap();
        assert_eq!(p.group_names, vec![("cur".into(), 1), ("rate".into(), 2)]);
    }

    #[test]
    fn duplicate_name_rejected() {
        assert!(parse(r"(?P<x>a)(?P<x>b)").is_err());
    }

    #[test]
    fn bounds_forms() {
        assert!(matches!(
            parse("a{3}").unwrap().ast,
            Ast::Repeat {
                min: 3,
                max: Some(3),
                ..
            }
        ));
        assert!(matches!(
            parse("a{2,}").unwrap().ast,
            Ast::Repeat {
                min: 2,
                max: None,
                ..
            }
        ));
        assert!(matches!(
            parse("a{2,5}").unwrap().ast,
            Ast::Repeat {
                min: 2,
                max: Some(5),
                ..
            }
        ));
    }

    #[test]
    fn literal_brace_when_not_bound() {
        let p = parse("a{x}").unwrap();
        match p.ast {
            Ast::Concat(parts) => assert_eq!(parts.len(), 4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lazy_quantifiers() {
        assert!(matches!(
            parse("a*?").unwrap().ast,
            Ast::Repeat { lazy: true, .. }
        ));
        assert!(matches!(
            parse("a+?").unwrap().ast,
            Ast::Repeat { lazy: true, .. }
        ));
    }

    #[test]
    fn class_parsing() {
        let p = parse("[a-z0_]").unwrap();
        assert_eq!(
            p.ast,
            Ast::Class {
                negated: false,
                items: vec![
                    ClassItem::Range('a', 'z'),
                    ClassItem::Single('0'),
                    ClassItem::Single('_')
                ]
            }
        );
    }

    #[test]
    fn negated_class_and_literal_bracket() {
        assert!(matches!(
            parse("[^a]").unwrap().ast,
            Ast::Class { negated: true, .. }
        ));
        let p = parse("[]a]").unwrap();
        match p.ast {
            Ast::Class { items, .. } => assert_eq!(items.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn class_trailing_dash_literal() {
        let p = parse("[a-]").unwrap();
        match p.ast {
            Ast::Class { items, .. } => {
                assert_eq!(items, vec![ClassItem::Single('a'), ClassItem::Single('-')])
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse("(a").is_err());
        assert!(parse("a)").is_err());
        assert!(parse("*a").is_err());
        assert!(parse("[a").is_err());
        assert!(parse("a{3,1}").is_err());
        assert!(parse(r"\q").is_err());
        assert!(parse("^*").is_err());
    }

    #[test]
    fn escapes() {
        assert_eq!(parse(r"\.").unwrap().ast, Ast::Literal('.'));
        assert_eq!(parse(r"\\").unwrap().ast, Ast::Literal('\\'));
        assert!(matches!(
            parse(r"\d").unwrap().ast,
            Ast::Class { negated: false, .. }
        ));
        assert!(matches!(
            parse(r"\W").unwrap().ast,
            Ast::Class { negated: true, .. }
        ));
    }
}
