//! NFA compilation and the Pike VM.
//!
//! Patterns compile to a Thompson NFA encoded as a flat instruction list;
//! execution uses the Pike VM (thread lists with capture slots), giving
//! linear-time matching with leftmost-first semantics — no exponential
//! backtracking even on adversarial wrapper patterns, which matters because
//! wrapper specs run over every fetched page.

use crate::ast::{Ast, ClassItem};

/// One NFA instruction.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Inst {
    /// Consume one character matching the predicate.
    Char(CharPred),
    /// Try `a` first (higher priority), then `b`.
    Split(usize, usize),
    Jmp(usize),
    /// Store the current position into a capture slot.
    Save(usize),
    AssertStart,
    AssertEnd,
    Match,
}

/// Character predicate for `Inst::Char`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CharPred {
    Literal(char),
    Dot,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
}

impl CharPred {
    fn matches(&self, c: char) -> bool {
        match self {
            CharPred::Literal(l) => *l == c,
            CharPred::Dot => c != '\n',
            CharPred::Class { negated, items } => {
                let inside = items.iter().any(|item| match item {
                    ClassItem::Single(s) => *s == c,
                    ClassItem::Range(lo, hi) => *lo <= c && c <= *hi,
                });
                inside != *negated
            }
        }
    }
}

/// Compile an AST into a program. Slot layout: `2*i` and `2*i+1` hold the
/// start/end of group `i`, group 0 being the whole match.
pub(crate) fn compile(ast: &Ast, group_count: u32) -> Vec<Inst> {
    let mut prog = Vec::new();
    prog.push(Inst::Save(0));
    emit(ast, &mut prog);
    prog.push(Inst::Save(1));
    prog.push(Inst::Match);
    let _ = group_count;
    prog
}

fn emit(ast: &Ast, prog: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Literal(c) => prog.push(Inst::Char(CharPred::Literal(*c))),
        Ast::Dot => prog.push(Inst::Char(CharPred::Dot)),
        Ast::Class { negated, items } => prog.push(Inst::Char(CharPred::Class {
            negated: *negated,
            items: items.clone(),
        })),
        Ast::Concat(parts) => {
            for p in parts {
                emit(p, prog);
            }
        }
        Ast::Alternate(branches) => {
            // Chain of splits; earlier branches have higher priority.
            let mut jump_ends = Vec::new();
            for (i, b) in branches.iter().enumerate() {
                if i + 1 < branches.len() {
                    let split_at = prog.len();
                    prog.push(Inst::Split(0, 0)); // patched below
                    let body_start = prog.len();
                    emit(b, prog);
                    jump_ends.push(prog.len());
                    prog.push(Inst::Jmp(0)); // patched below
                    let next_branch = prog.len();
                    prog[split_at] = Inst::Split(body_start, next_branch);
                } else {
                    emit(b, prog);
                }
            }
            let end = prog.len();
            for j in jump_ends {
                prog[j] = Inst::Jmp(end);
            }
        }
        Ast::Repeat {
            inner,
            min,
            max,
            lazy,
        } => {
            // Mandatory copies.
            for _ in 0..*min {
                emit(inner, prog);
            }
            match max {
                None => {
                    // Loop: split(body, exit) — or swapped when lazy.
                    let split_at = prog.len();
                    prog.push(Inst::Split(0, 0));
                    let body = prog.len();
                    emit(inner, prog);
                    prog.push(Inst::Jmp(split_at));
                    let exit = prog.len();
                    prog[split_at] = if *lazy {
                        Inst::Split(exit, body)
                    } else {
                        Inst::Split(body, exit)
                    };
                }
                Some(m) => {
                    // (m - min) optional copies.
                    let mut splits = Vec::new();
                    for _ in *min..*m {
                        let split_at = prog.len();
                        prog.push(Inst::Split(0, 0));
                        let body = prog.len();
                        emit(inner, prog);
                        splits.push((split_at, body));
                    }
                    let exit = prog.len();
                    for (split_at, body) in splits {
                        prog[split_at] = if *lazy {
                            Inst::Split(exit, body)
                        } else {
                            Inst::Split(body, exit)
                        };
                    }
                }
            }
        }
        Ast::Group { index, inner, .. } => {
            prog.push(Inst::Save(2 * *index as usize));
            emit(inner, prog);
            prog.push(Inst::Save(2 * *index as usize + 1));
        }
        Ast::NonCapturing(inner) => emit(inner, prog),
        Ast::AnchorStart => prog.push(Inst::AssertStart),
        Ast::AnchorEnd => prog.push(Inst::AssertEnd),
    }
}

/// Slot vector: positions are char indices into the haystack.
pub(crate) type Slots = Vec<Option<usize>>;

struct Thread {
    pc: usize,
    slots: Slots,
}

/// Add a thread (and its ε-closure) to the list, respecting priority order
/// and deduplicating by pc.
fn add_thread(
    prog: &[Inst],
    list: &mut Vec<Thread>,
    seen: &mut [bool],
    pc: usize,
    pos: usize,
    text_len: usize,
    slots: Slots,
) {
    if seen[pc] {
        return;
    }
    seen[pc] = true;
    match &prog[pc] {
        Inst::Jmp(t) => add_thread(prog, list, seen, *t, pos, text_len, slots),
        Inst::Split(a, b) => {
            add_thread(prog, list, seen, *a, pos, text_len, slots.clone());
            add_thread(prog, list, seen, *b, pos, text_len, slots);
        }
        Inst::Save(slot) => {
            let mut s = slots;
            s[*slot] = Some(pos);
            add_thread(prog, list, seen, pc + 1, pos, text_len, s);
        }
        Inst::AssertStart => {
            if pos == 0 {
                add_thread(prog, list, seen, pc + 1, pos, text_len, slots);
            }
        }
        Inst::AssertEnd => {
            if pos == text_len {
                add_thread(prog, list, seen, pc + 1, pos, text_len, slots);
            }
        }
        Inst::Char(_) | Inst::Match => list.push(Thread { pc, slots }),
    }
}

/// Run the Pike VM over `text` (as chars) searching from `start`.
/// Returns the slot vector of the leftmost-first match, if any.
pub(crate) fn pike_search(
    prog: &[Inst],
    nslots: usize,
    text: &[char],
    start: usize,
) -> Option<Slots> {
    let mut clist: Vec<Thread> = Vec::new();
    let mut nlist: Vec<Thread> = Vec::new();
    let mut seen = vec![false; prog.len()];
    let mut matched: Option<Slots> = None;

    let mut pos = start;
    loop {
        // Seed a new attempt at this position unless a match already exists
        // (leftmost semantics: once matched, no later starts compete).
        if matched.is_none() {
            // `seen` is shared with threads added below for this position.
            add_thread(
                prog,
                &mut clist,
                &mut seen,
                0,
                pos,
                text.len(),
                vec![None; nslots],
            );
        }
        if clist.is_empty() && matched.is_some() {
            break;
        }
        if clist.is_empty() && pos >= text.len() {
            break;
        }
        let c = text.get(pos).copied();
        nlist.clear();
        let mut next_seen = vec![false; prog.len()];
        let mut i = 0;
        while i < clist.len() {
            let th = &clist[i];
            match &prog[th.pc] {
                Inst::Char(pred) => {
                    if let Some(ch) = c {
                        if pred.matches(ch) {
                            add_thread(
                                prog,
                                &mut nlist,
                                &mut next_seen,
                                th.pc + 1,
                                pos + 1,
                                text.len(),
                                th.slots.clone(),
                            );
                        }
                    }
                }
                Inst::Match => {
                    matched = Some(th.slots.clone());
                    // Cut lower-priority threads.
                    break;
                }
                _ => unreachable!("eps instructions resolved at add time"),
            }
            i += 1;
        }
        std::mem::swap(&mut clist, &mut nlist);
        seen = next_seen;
        if pos >= text.len() {
            break;
        }
        pos += 1;
    }
    matched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;

    fn search(pattern: &str, text: &str) -> Option<(usize, usize)> {
        let p = parse(pattern).unwrap();
        let prog = compile(&p.ast, p.group_count);
        let chars: Vec<char> = text.chars().collect();
        let nslots = 2 * (p.group_count as usize + 1);
        pike_search(&prog, nslots, &chars, 0).map(|s| (s[0].unwrap(), s[1].unwrap()))
    }

    #[test]
    fn literal_search() {
        assert_eq!(search("bc", "abcd"), Some((1, 3)));
        assert_eq!(search("xy", "abcd"), None);
    }

    #[test]
    fn leftmost_match_wins() {
        assert_eq!(search("a+", "baaa"), Some((1, 4)));
    }

    #[test]
    fn greedy_vs_lazy() {
        assert_eq!(search("a+", "aaa"), Some((0, 3)));
        assert_eq!(search("a+?", "aaa"), Some((0, 1)));
    }

    #[test]
    fn anchors() {
        assert_eq!(search("^ab", "abc"), Some((0, 2)));
        assert_eq!(search("^bc", "abc"), None);
        assert_eq!(search("bc$", "abc"), Some((1, 3)));
        assert_eq!(search("ab$", "abc"), None);
    }

    #[test]
    fn empty_pattern_matches_empty() {
        assert_eq!(search("", "abc"), Some((0, 0)));
    }

    #[test]
    fn pathological_pattern_terminates() {
        // (a*)* on a long non-matching suffix: linear for the Pike VM.
        let text = format!("{}b", "a".repeat(200));
        assert!(search("(a*)*$", &text).is_none() || search("(a*)*$", &text).is_some());
        // Claim: it completes; value checked loosely above.
        assert_eq!(search("(a|aa)*c", &text), None);
    }
}
