//! Streaming `/query` e2e: chunked responses sourced straight from the
//! operator pipeline — byte-identical to the materialized path, capped
//! by row/byte limits, and aborted (plan cancelled, worker freed) when
//! the client disconnects mid-stream.
//!
//! The byte-identity contract runs over the full transport conformance
//! matrix and the mid-stream-abort contract over every reactor backend ×
//! shard count (see `support/transport.rs`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use coin_core::fixtures::figure2_system;
use coin_core::CoinSystem;
use coin_rel::{Catalog, ColumnType, Schema, Table, Value};
use coin_server::http::HttpClient;
use coin_server::{start_server_with, Connection, ServerConfig, ServerHandle, Transport};
use coin_wrapper::RelationalSource;

#[path = "support/transport.rs"]
mod support;

use support::{full_matrix, reactor_matrix, EPHEMERAL};

const BULK_SQL: &str = "SELECT big.id, big.payload FROM big";

/// Figure 2 plus one synthetic table of `rows` ~70-byte rows, so results
/// can be made far larger than any socket buffer.
fn bulk_system(rows: usize) -> CoinSystem {
    let mut sys = figure2_system();
    let payload = Value::str(&"x".repeat(48));
    let table = Table::from_rows(
        "big",
        Schema::of(&[("id", ColumnType::Int), ("payload", ColumnType::Str)]),
        (0..rows)
            .map(|i| vec![Value::Int(i as i64), payload.clone()])
            .collect(),
    );
    sys.add_source(RelationalSource::new(
        "bulk",
        Catalog::new().with_table(table),
    ))
    .unwrap();
    sys
}

fn start_bulk(rows: usize, config: ServerConfig) -> ServerHandle {
    start_server_with(Arc::new(bulk_system(rows)), EPHEMERAL, config).unwrap()
}

#[test]
fn chunked_and_whole_naive_bodies_are_byte_identical() {
    // Byte identity is a cross-transport contract: the chunked document
    // must not vary with the writer driving it (blocking thread, poll
    // loop, epoll loop, any shard count).
    for case in full_matrix() {
        let server = start_bulk(5_000, case.apply(ServerConfig::default()));
        let mut client = HttpClient::new(server.addr);
        let streamed = client
            .send(
                "POST",
                "/query",
                Some("application/json"),
                format!("{{\"sql\":\"{BULK_SQL}\",\"mode\":\"naive\"}}").as_bytes(),
            )
            .unwrap();
        assert_eq!(streamed.status, 200);
        assert_eq!(
            streamed
                .headers
                .get("transfer-encoding")
                .map(String::as_str),
            Some("chunked"),
            "[{}]",
            case.name
        );
        let whole = client
            .send(
                "POST",
                "/query",
                Some("application/json"),
                format!("{{\"sql\":\"{BULK_SQL}\",\"mode\":\"naive\",\"stream\":false}}")
                    .as_bytes(),
            )
            .unwrap();
        assert_eq!(whole.status, 200);
        assert!(whole.headers.contains_key("content-length"));
        // The incremental writer and the materialized writer are
        // independent code paths; the documents they produce must match
        // byte for byte.
        assert_eq!(streamed.body, whole.body, "[{}]", case.name);
        server.stop();
    }
}

#[test]
fn expression_heavy_streamed_body_is_byte_identical() {
    // CASE, LIKE, BETWEEN, NOT IN and arithmetic all ride the register-VM
    // hot path; the chunked writer must still produce exactly the bytes of
    // the materialized one (float rendering, -0.0, NULLs included).
    const SQL: &str = "SELECT big.id * 2 + 1, big.id / -4.0, \
         CASE WHEN big.id < 100 THEN 'lo' ELSE big.payload END \
         FROM big \
         WHERE big.payload LIKE 'x%' AND big.id BETWEEN 3 AND 4800 \
         AND big.id + 1 NOT IN (7, 9)";
    let server = start_bulk(5_000, ServerConfig::default());
    let mut client = HttpClient::new(server.addr);
    let body =
        |stream: bool| format!("{{\"sql\":\"{SQL}\",\"mode\":\"naive\",\"stream\":{stream}}}");
    let streamed = client
        .send(
            "POST",
            "/query",
            Some("application/json"),
            body(true).as_bytes(),
        )
        .unwrap();
    assert_eq!(streamed.status, 200);
    let whole = client
        .send(
            "POST",
            "/query",
            Some("application/json"),
            body(false).as_bytes(),
        )
        .unwrap();
    assert_eq!(whole.status, 200);
    assert_eq!(streamed.body, whole.body);
    // Sanity: the predicate actually filtered (4798 survivors minus the
    // NOT IN exclusions).
    let text = String::from_utf8(streamed.body).unwrap();
    assert!(text.contains("\"lo\""), "CASE low arm missing: {text}");
    assert!(text.contains("-0.75"), "float division missing: {text}");
    server.stop();
}

#[test]
fn chunked_and_whole_mediated_bodies_are_byte_identical() {
    // Mediated responses carry monotonic cache counters, so the two
    // requests must hit two fresh (identical) systems.
    let q = "SELECT r1.cname, r1.revenue FROM r1, r2 \
             WHERE r1.cname = r2.cname AND r1.revenue > r2.expenses";
    let body = |stream: bool| {
        format!(
            "{{\"sql\":\"{q}\",\"context\":\"c_recv\",\"mode\":\"mediated\",\"stream\":{stream}}}"
        )
    };
    let fetch = |stream: bool| {
        let server = start_server_with(
            Arc::new(figure2_system()),
            EPHEMERAL,
            ServerConfig::default(),
        )
        .unwrap();
        let resp = HttpClient::new(server.addr)
            .send(
                "POST",
                "/query",
                Some("application/json"),
                body(stream).as_bytes(),
            )
            .unwrap();
        server.stop();
        assert_eq!(resp.status, 200);
        resp.body
    };
    let streamed = fetch(true);
    let whole = fetch(false);
    assert!(String::from_utf8_lossy(&streamed).contains("NTT"));
    assert_eq!(streamed, whole);
}

#[test]
fn streamed_result_matches_in_process_reference() {
    let rows = 10_000;
    let server = start_bulk(rows, ServerConfig::default());
    let conn = Connection::open(server.addr, "c_recv");
    let rs = conn.naive_statement().execute(BULK_SQL).unwrap();
    assert_eq!(rs.len(), rows);
    assert!(!rs.truncated);
    let (reference, _) = bulk_system(rows).query_naive(BULK_SQL).unwrap();
    assert_eq!(rs.schema, reference.schema);
    assert_eq!(rs.rows, reference.rows);
    server.stop();
}

#[test]
fn max_rows_caps_the_result_and_flags_truncation() {
    let server = start_bulk(1_000, ServerConfig::default());
    let conn = Connection::open(server.addr, "c_recv");
    let rs = conn
        .naive_statement()
        .max_rows(10)
        .execute(BULK_SQL)
        .unwrap();
    assert_eq!(rs.len(), 10);
    assert!(rs.truncated, "dropped 990 rows");
    // A cap the result fits under exactly is not a truncation.
    let rs = conn
        .naive_statement()
        .max_rows(1_000)
        .execute(BULK_SQL)
        .unwrap();
    assert_eq!(rs.len(), 1_000);
    assert!(!rs.truncated);
    server.stop();
}

#[test]
fn max_bytes_caps_the_result_and_flags_truncation() {
    let server = start_bulk(1_000, ServerConfig::default());
    let conn = Connection::open(server.addr, "c_recv");
    let rs = conn
        .naive_statement()
        .max_bytes(4_096)
        .execute(BULK_SQL)
        .unwrap();
    assert!(
        !rs.is_empty(),
        "the cap is row-granular, not all-or-nothing"
    );
    assert!(
        rs.len() < 1_000,
        "the cap dropped most of 1000 ~70-byte rows"
    );
    assert!(rs.truncated);
    server.stop();
}

#[test]
fn threaded_transport_streams_and_aborts_on_disconnect() {
    // The thread-per-connection transport drives the same pipeline with
    // a blocking writer: chunked responses work, and a peer disconnect
    // surfaces as a failed write that cancels the plan and frees the
    // pinned worker.
    let server = start_bulk(
        200_000,
        ServerConfig {
            workers: 1,
            transport: Transport::Threaded,
            ..ServerConfig::default()
        },
    );
    let body = format!("{{\"sql\":\"{BULK_SQL}\",\"mode\":\"naive\"}}");
    let mut raw = TcpStream::connect(server.addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(
        format!(
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    raw.flush().unwrap();
    let mut got = 0usize;
    let mut buf = [0u8; 8192];
    while got < 64 * 1024 {
        let n = raw.read(&mut buf).unwrap();
        assert!(n > 0, "server closed the stream before the disconnect");
        got += n;
    }
    drop(raw);

    let deadline = Instant::now() + Duration::from_secs(10);
    while server.metrics().streams_aborted == 0 {
        assert!(
            Instant::now() < deadline,
            "abort never observed: {:?}",
            server.metrics()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The pinned worker came back: a fresh (streamed) query completes.
    let conn = Connection::open(server.addr, "c_recv");
    let rs = conn
        .naive_statement()
        .max_rows(5)
        .execute(BULK_SQL)
        .unwrap();
    assert_eq!(rs.len(), 5);
    let m = server.metrics();
    assert_eq!(m.streams, 2);
    assert_eq!(m.streams_aborted, 1);
    server.stop();
}

#[test]
fn mid_stream_disconnect_aborts_the_plan_and_frees_the_worker() {
    // One worker: if the disconnected stream's plan kept running (or its
    // producer stayed parked on the channel), the follow-up request could
    // never be served. Every reactor backend × shard count must observe
    // the disconnect the same way.
    for case in reactor_matrix() {
        let server = start_bulk(
            200_000,
            case.apply(ServerConfig {
                workers: 1,
                transport: Transport::Reactor,
                ..ServerConfig::default()
            }),
        );
        let body = format!("{{\"sql\":\"{BULK_SQL}\",\"mode\":\"naive\"}}");
        let mut raw = TcpStream::connect(server.addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        raw.write_all(
            format!(
                "POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
        raw.flush().unwrap();

        // Read far enough to prove the stream is in flight (the ~14 MB
        // body cannot have completed into socket buffers), then vanish.
        let mut got = 0usize;
        let mut buf = [0u8; 8192];
        while got < 64 * 1024 {
            let n = raw.read(&mut buf).unwrap();
            assert!(n > 0, "server closed the stream before the disconnect");
            got += n;
        }
        drop(raw);

        // The owning shard observes the disconnect, cancels the plan,
        // and counts the abort.
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.metrics().streams_aborted == 0 {
            assert!(
                Instant::now() < deadline,
                "[{}] abort never observed: {:?}",
                case.name,
                server.metrics()
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        // The lone worker is free again: a fresh request completes.
        let stats = HttpClient::new(server.addr)
            .request("GET", "/stats", None, &[])
            .unwrap();
        assert!(String::from_utf8_lossy(&stats).contains("cache_hits"));
        let m = server.metrics();
        assert_eq!(m.streams, 1, "[{}] {m:?}", case.name);
        assert_eq!(m.streams_aborted, 1, "[{}] {m:?}", case.name);
        server.stop();
    }
}
