//! Backpressure e2e: a full bounded queue sheds overflow with `503 +
//! Retry-After`, the server drains and recovers once handlers unblock,
//! and shutdown is never lost — even while requests are in flight.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use coin_server::http::{
    serve_with, Handler, HttpClient, HttpRequest, HttpResponse, ServerConfig, Transport,
};

/// A handler that signals entry and then blocks until released.
fn gated_handler(
    entered_tx: mpsc::Sender<()>,
    release_rx: mpsc::Receiver<()>,
) -> (Handler, Arc<AtomicUsize>) {
    let served = Arc::new(AtomicUsize::new(0));
    let served2 = Arc::clone(&served);
    let release_rx = Mutex::new(release_rx);
    let handler: Handler = Arc::new(move |_req: &HttpRequest| {
        let _ = entered_tx.send(());
        let _ = release_rx.lock().unwrap().recv();
        served2.fetch_add(1, Ordering::SeqCst);
        HttpResponse::ok("text/plain", "done")
    });
    (handler, served)
}

#[test]
fn full_queue_sheds_503_with_retry_after_then_drains_and_recovers() {
    let (entered_tx, entered_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let (handler, served) = gated_handler(entered_tx, release_rx);
    let server = serve_with(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue_depth: 2,
            max_connections: 4,
            retry_after_secs: 3,
            ..ServerConfig::default()
        },
        handler,
    )
    .unwrap();
    let addr = server.addr;

    // Two requests occupy both workers…
    let busy: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = HttpClient::new(addr);
                c.request("GET", &format!("/busy{i}"), None, &[]).unwrap()
            })
        })
        .collect();
    for _ in 0..2 {
        entered_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("both workers enter the slow handler");
    }
    // …two more fill the bounded queue (admitted, not yet served)…
    let queued: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = HttpClient::new(addr);
                c.request("GET", &format!("/queued{i}"), None, &[]).unwrap()
            })
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().connections_accepted < 4 {
        assert!(Instant::now() < deadline, "queued connections not admitted");
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(50));

    // …and overflow is shed immediately with 503 + Retry-After.
    for i in 0..3 {
        let mut probe = HttpClient::new(addr);
        let resp = probe
            .send("GET", &format!("/overflow{i}"), None, &[])
            .unwrap();
        assert_eq!(resp.status, 503, "overflow request {i} must be shed");
        assert_eq!(
            resp.headers.get("retry-after").map(String::as_str),
            Some("3"),
            "shed responses advertise Retry-After"
        );
    }
    assert!(server.metrics().connections_shed >= 3);
    assert_eq!(served.load(Ordering::SeqCst), 0, "nothing finished yet");

    // Release all four in-flight requests: the queue drains…
    for _ in 0..4 {
        release_tx.send(()).unwrap();
    }
    for t in busy.into_iter().chain(queued) {
        assert_eq!(t.join().unwrap(), b"done");
    }
    assert_eq!(served.load(Ordering::SeqCst), 4, "admitted work all served");

    // …and the server accepts fresh work again (recovered, no deadlock).
    release_tx.send(()).unwrap();
    let mut after = HttpClient::new(addr);
    assert_eq!(after.request("GET", "/after", None, &[]).unwrap(), b"done");

    // Shutdown completes promptly even after an overload episode.
    let t0 = Instant::now();
    server.stop();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown signal was lost"
    );
}

#[test]
fn threaded_transport_sheds_over_budget_connections_identically() {
    // The 503 + Retry-After shedding contract holds on the legacy
    // transport too: one worker busy, one connection queued, budget 2 —
    // the third connection is refused.
    let (entered_tx, entered_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let (handler, served) = gated_handler(entered_tx, release_rx);
    let server = serve_with(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            max_connections: 2,
            retry_after_secs: 5,
            transport: Transport::Threaded,
            ..ServerConfig::default()
        },
        handler,
    )
    .unwrap();
    let addr = server.addr;
    let busy = std::thread::spawn(move || {
        let mut c = HttpClient::new(addr);
        c.request("GET", "/busy", None, &[]).unwrap()
    });
    entered_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("request reaches the worker");
    let queued = std::thread::spawn(move || {
        let mut c = HttpClient::new(addr);
        c.request("GET", "/queued", None, &[]).unwrap()
    });
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().connections_accepted < 2 {
        assert!(Instant::now() < deadline, "queued connection not admitted");
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(30));

    let mut probe = HttpClient::new(addr);
    let resp = probe.send("GET", "/overflow", None, &[]).unwrap();
    assert_eq!(resp.status, 503);
    assert_eq!(
        resp.headers.get("retry-after").map(String::as_str),
        Some("5")
    );
    assert!(served.load(Ordering::SeqCst) == 0, "nothing finished yet");

    release_tx.send(()).unwrap();
    release_tx.send(()).unwrap();
    assert_eq!(busy.join().unwrap(), b"done");
    assert_eq!(queued.join().unwrap(), b"done");
    server.stop();
}

#[test]
fn shutdown_is_not_lost_while_handlers_are_busy() {
    let (entered_tx, entered_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let (handler, _served) = gated_handler(entered_tx, release_rx);
    let server = serve_with(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        },
        handler,
    )
    .unwrap();
    let addr = server.addr;
    let busy = std::thread::spawn(move || {
        let mut c = HttpClient::new(addr);
        c.request("GET", "/busy", None, &[])
    });
    entered_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("request reached the handler");
    // Release concurrently with stop: the in-flight request finishes and
    // the server still joins all threads.
    release_tx.send(()).unwrap();
    let t0 = Instant::now();
    server.stop();
    assert!(t0.elapsed() < Duration::from_secs(5), "stop() hung");
    let _ = busy.join().unwrap(); // the busy request completed or got a clean close
}
