//! Backpressure e2e: a full bounded queue sheds overflow with `503 +
//! Retry-After`, the server drains and recovers once handlers unblock,
//! and shutdown is never lost — even while requests are in flight.
//!
//! The overload test runs over the reactor conformance matrix
//! (poll/epoll × 1/4 shards); the threaded transport has its own
//! connection-budget variant below, and the shutdown test runs on every
//! transport.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use coin_server::http::{
    serve_with, Handler, HttpClient, HttpRequest, HttpResponse, ServerConfig, Transport,
};

#[path = "support/transport.rs"]
mod support;

use support::{full_matrix, reactor_matrix, wait_until, EPHEMERAL};

/// A handler that signals entry and then blocks until released.
fn gated_handler(
    entered_tx: mpsc::Sender<()>,
    release_rx: mpsc::Receiver<()>,
) -> (Handler, Arc<AtomicUsize>) {
    let served = Arc::new(AtomicUsize::new(0));
    let served2 = Arc::clone(&served);
    let release_rx = Mutex::new(release_rx);
    let handler: Handler = Arc::new(move |_req: &HttpRequest| {
        let _ = entered_tx.send(());
        let _ = release_rx.lock().unwrap().recv();
        served2.fetch_add(1, Ordering::SeqCst);
        HttpResponse::ok("text/plain", "done")
    });
    (handler, served)
}

#[test]
fn full_queue_sheds_503_with_retry_after_then_drains_and_recovers() {
    for case in reactor_matrix() {
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let (handler, served) = gated_handler(entered_tx, release_rx);
        let server = serve_with(
            EPHEMERAL,
            case.apply(ServerConfig {
                workers: 2,
                queue_depth: 2,
                max_connections: 4,
                retry_after_secs: 3,
                ..ServerConfig::default()
            }),
            handler,
        )
        .unwrap();
        let addr = server.addr;

        // Two requests occupy both workers…
        let busy: Vec<_> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = HttpClient::new(addr);
                    c.request("GET", &format!("/busy{i}"), None, &[]).unwrap()
                })
            })
            .collect();
        for _ in 0..2 {
            entered_rx
                .recv_timeout(Duration::from_secs(5))
                .expect("both workers enter the slow handler");
        }
        // …two more fill the bounded queue. `requests` counts
        // dispatches, so 4 means both extras really are parked in the
        // queue behind the busy workers (readiness signal — the fixed
        // sleep this replaces was a flake).
        let queued: Vec<_> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = HttpClient::new(addr);
                    c.request("GET", &format!("/queued{i}"), None, &[]).unwrap()
                })
            })
            .collect();
        wait_until("the queue holds both extra requests", || {
            server.metrics().requests == 4
        });

        // …and overflow is shed immediately with 503 + Retry-After.
        for i in 0..3 {
            let mut probe = HttpClient::new(addr);
            let resp = probe
                .send("GET", &format!("/overflow{i}"), None, &[])
                .unwrap();
            assert_eq!(
                resp.status, 503,
                "[{}] overflow request {i} must be shed",
                case.name
            );
            assert_eq!(
                resp.headers.get("retry-after").map(String::as_str),
                Some("3"),
                "shed responses advertise Retry-After"
            );
        }
        assert!(server.metrics().connections_shed >= 3);
        assert_eq!(served.load(Ordering::SeqCst), 0, "nothing finished yet");

        // Release all four in-flight requests: the queue drains…
        for _ in 0..4 {
            release_tx.send(()).unwrap();
        }
        for t in busy.into_iter().chain(queued) {
            assert_eq!(t.join().unwrap(), b"done");
        }
        assert_eq!(served.load(Ordering::SeqCst), 4, "admitted work all served");

        // …and once the drained clients' sockets close, the server
        // accepts fresh work again (recovered, no deadlock). The budget
        // check is a bound, not a reservation system: a new connection
        // arriving before the closes are processed could still be shed,
        // so wait for the gauge to fall first.
        wait_until("the drained sockets to close", || {
            server.metrics().open_connections == 0
        });
        release_tx.send(()).unwrap();
        let mut after = HttpClient::new(addr);
        assert_eq!(
            after.request("GET", "/after", None, &[]).unwrap(),
            b"done",
            "[{}] recovery request",
            case.name
        );

        // Shutdown completes promptly even after an overload episode.
        let t0 = Instant::now();
        server.stop();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "shutdown signal was lost"
        );
    }
}

#[test]
fn threaded_transport_sheds_over_budget_connections_identically() {
    // The 503 + Retry-After shedding contract holds on the legacy
    // transport too: one worker busy, one connection queued, budget 2 —
    // the third connection is refused.
    let (entered_tx, entered_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let (handler, served) = gated_handler(entered_tx, release_rx);
    let server = serve_with(
        EPHEMERAL,
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            max_connections: 2,
            retry_after_secs: 5,
            transport: Transport::Threaded,
            ..ServerConfig::default()
        },
        handler,
    )
    .unwrap();
    let addr = server.addr;
    let busy = std::thread::spawn(move || {
        let mut c = HttpClient::new(addr);
        c.request("GET", "/busy", None, &[]).unwrap()
    });
    entered_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("request reaches the worker");
    let queued = std::thread::spawn(move || {
        let mut c = HttpClient::new(addr);
        c.request("GET", "/queued", None, &[]).unwrap()
    });
    // Both connections counted open = the budget is exhausted; the next
    // connection must be shed (the gauge is the readiness signal — a
    // fixed sleep here was a flake).
    wait_until("both connections to be admitted", || {
        server.metrics().open_connections == 2
    });

    let mut probe = HttpClient::new(addr);
    let resp = probe.send("GET", "/overflow", None, &[]).unwrap();
    assert_eq!(resp.status, 503);
    assert_eq!(
        resp.headers.get("retry-after").map(String::as_str),
        Some("5")
    );
    assert!(served.load(Ordering::SeqCst) == 0, "nothing finished yet");

    release_tx.send(()).unwrap();
    release_tx.send(()).unwrap();
    assert_eq!(busy.join().unwrap(), b"done");
    assert_eq!(queued.join().unwrap(), b"done");
    server.stop();
}

#[test]
fn shutdown_is_not_lost_while_handlers_are_busy() {
    for case in full_matrix() {
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let (handler, _served) = gated_handler(entered_tx, release_rx);
        let server = serve_with(
            EPHEMERAL,
            case.apply(ServerConfig {
                workers: 1,
                queue_depth: 1,
                ..ServerConfig::default()
            }),
            handler,
        )
        .unwrap();
        let addr = server.addr;
        let busy = std::thread::spawn(move || {
            let mut c = HttpClient::new(addr);
            c.request("GET", "/busy", None, &[])
        });
        entered_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("request reached the handler");
        // Release concurrently with stop: the in-flight request finishes
        // and the server still joins all threads.
        release_tx.send(()).unwrap();
        let t0 = Instant::now();
        server.stop();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "[{}] stop() hung",
            case.name
        );
        let _ = busy.join().unwrap(); // completed or got a clean close
    }
}
