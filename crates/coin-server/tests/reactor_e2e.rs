//! Reactor-transport e2e: the properties that distinguish the
//! event-driven loop from thread-per-connection — open connections far
//! exceeding the worker pool, idle-timeout reaping across a whole fleet,
//! slow-loris clients that never starve fast ones, request-level load
//! shedding that keeps the connection, and panic containment — plus the
//! `open_connections`/`reactor_wakeups` gauges that make those states
//! observable.
//!
//! Every test runs over the full reactor conformance matrix (poll/epoll
//! × 1/4 shards, see `support/transport.rs`): these are contract
//! properties of the transport, not of one backend.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use coin_core::fixtures::figure2_system;
use coin_server::http::{serve_with, Handler, HttpClient, HttpRequest, HttpResponse};
use coin_server::{start_server_with, ServerConfig, ServerHandle};

#[path = "support/load.rs"]
#[allow(dead_code)]
mod load;
#[path = "support/transport.rs"]
mod support;

use load::IdleFleet;
use support::{reactor_matrix, wait_until, TransportCase, EPHEMERAL};

fn start(case: TransportCase, config: ServerConfig) -> ServerHandle {
    start_server_with(Arc::new(figure2_system()), EPHEMERAL, case.apply(config)).unwrap()
}

/// Poll `metrics()` until `pred` holds on the open-connection gauge.
fn wait_for(server: &ServerHandle, pred: impl Fn(u64) -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if pred(server.metrics().open_connections) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; metrics: {:?}",
            server.metrics()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The acceptance scenario: 8× more concurrently-open keep-alive
/// connections than worker threads, every request completing, and the
/// `open_connections` gauge agreeing with the fleet size.
#[test]
fn idle_fleet_outnumbers_workers_and_all_requests_complete() {
    const WORKERS: usize = 2;
    const FLEET: usize = 8 * WORKERS; // ≥ 4× is the acceptance floor
    for case in reactor_matrix() {
        let server = start(
            case,
            ServerConfig {
                workers: WORKERS,
                idle_timeout: Duration::from_secs(30),
                ..ServerConfig::default()
            },
        );

        let mut fleet = IdleFleet::open(server.addr, FLEET);
        let m = server.metrics();
        assert_eq!(
            m.open_connections, FLEET as u64,
            "[{}] gauge must count the whole fleet: {m:?}",
            case.name
        );
        assert!(
            m.reactor_wakeups > 0,
            "[{}] the readiness loop ran: {m:?}",
            case.name
        );
        // Round-robin handoff: connection i lives on shard i % N, so
        // the per-shard gauges split the fleet exactly evenly.
        assert_eq!(m.open_per_shard.len(), case.shards);
        for (shard, &open) in m.open_per_shard.iter().enumerate() {
            assert_eq!(
                open,
                (FLEET / case.shards) as u64,
                "[{}] shard {shard} unbalanced: {m:?}",
                case.name
            );
        }

        // Every held connection still answers — no worker was pinned by
        // the other 15 open sockets (a thread-per-connection pool of 2
        // would strand 14 of them).
        assert_eq!(fleet.ping_all(), 0, "[{}] idle socket dropped", case.name);
        let m = server.metrics();
        assert_eq!(m.open_connections, FLEET as u64);
        assert_eq!(m.requests, 2 * FLEET as u64);
        assert_eq!(m.connections_accepted, FLEET as u64);
        assert_eq!(m.connections_shed, 0, "[{}] nothing shed: {m:?}", case.name);
        server.stop();
    }
}

#[test]
fn idle_timeout_reaps_a_whole_fleet_under_the_reactor() {
    for case in reactor_matrix() {
        let server = start(
            case,
            ServerConfig {
                workers: 2,
                idle_timeout: Duration::from_millis(150),
                ..ServerConfig::default()
            },
        );
        let fleet = IdleFleet::open(server.addr, 6);
        assert_eq!(server.metrics().open_connections, 6);
        // No further traffic: every shard must reap its slice on its own.
        wait_for(&server, |open| open == 0, "idle fleet to be reaped");
        let m = server.metrics();
        assert!(
            m.open_per_shard.iter().all(|&open| open == 0),
            "[{}] a shard leaked its reaped connections: {m:?}",
            case.name
        );
        drop(fleet);
        server.stop();
    }
}

#[test]
fn slow_loris_clients_never_starve_the_event_loop() {
    // One worker and several byte-dripping peers: under a blocking
    // transport each loris would pin a worker; under the reactor they
    // only hold buffer state, and the fast client stays fast.
    for case in reactor_matrix() {
        let server = start(
            case,
            ServerConfig {
                workers: 1,
                read_timeout: Duration::from_millis(600),
                ..ServerConfig::default()
            },
        );
        let mut loris: Vec<TcpStream> = (0..4)
            .map(|_| {
                let mut s = TcpStream::connect(server.addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                s.write_all(b"GET /stats HT").unwrap(); // never finishes
                s.flush().unwrap();
                s
            })
            .collect();

        // The fast client completes a burst while the loris sockets stall.
        let mut fast = HttpClient::new(server.addr);
        let t0 = Instant::now();
        for _ in 0..10 {
            let resp = fast.send("GET", "/stats", None, &[]).unwrap();
            assert_eq!(resp.status, 200);
        }
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "[{}] fast client was starved: 10 requests took {:?}",
            case.name,
            t0.elapsed()
        );

        // Each loris is eventually answered 408 and closed.
        for s in &mut loris {
            let mut reply = Vec::new();
            s.read_to_end(&mut reply).unwrap();
            let text = String::from_utf8_lossy(&reply);
            assert!(text.contains("408"), "[{}] {text}", case.name);
        }
        assert_eq!(server.metrics().request_timeouts, 4);
        server.stop();
    }
}

/// A handler that signals entry and then blocks until released.
fn gated_handler(entered_tx: mpsc::Sender<()>, release_rx: mpsc::Receiver<()>) -> Handler {
    let release_rx = Mutex::new(release_rx);
    Arc::new(move |_req: &HttpRequest| {
        let _ = entered_tx.send(());
        let _ = release_rx.lock().unwrap().recv();
        HttpResponse::ok("text/plain", "done")
    })
}

#[test]
fn full_queue_sheds_the_request_but_keeps_the_connection() {
    // Distinct from connection-level shedding: when the *work queue* is
    // full, the reactor answers 503 on the open connection and keeps it
    // usable — the client retries on the same socket, no reconnect.
    for case in reactor_matrix() {
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let server = serve_with(
            EPHEMERAL,
            case.apply(ServerConfig {
                workers: 1,
                queue_depth: 1,
                max_connections: 64, // plenty: only the queue is scarce
                retry_after_secs: 2,
                ..ServerConfig::default()
            }),
            gated_handler(entered_tx, release_rx),
        )
        .unwrap();
        let addr = server.addr;

        // Occupy the single worker…
        let busy = std::thread::spawn(move || {
            let mut c = HttpClient::new(addr);
            c.request("GET", "/busy", None, &[]).unwrap()
        });
        entered_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("request reaches the worker");
        // …and fill the depth-1 queue. `requests` counts dispatches, so
        // 2 means the second request really is parked in the queue (the
        // readiness signal; a fixed sleep here was a flake).
        let queued = std::thread::spawn(move || {
            let mut c = HttpClient::new(addr);
            c.request("GET", "/queued", None, &[]).unwrap()
        });
        wait_until("the queue holds the second request", || {
            server.metrics().requests == 2
        });

        let mut probe = HttpClient::new(addr);
        let resp = probe.send("GET", "/overflow", None, &[]).unwrap();
        assert_eq!(resp.status, 503, "[{}] overflow must be shed", case.name);
        assert_eq!(
            resp.headers.get("retry-after").map(String::as_str),
            Some("2")
        );
        assert!(server.metrics().connections_shed >= 1);

        // Release the two admitted requests, plus one for the retry below.
        for _ in 0..3 {
            release_tx.send(()).unwrap();
        }
        assert_eq!(busy.join().unwrap(), b"done");
        assert_eq!(queued.join().unwrap(), b"done");

        // The shed client's *same socket* now succeeds: the 503 did not
        // cost the connection.
        assert_eq!(probe.request("GET", "/retry", None, &[]).unwrap(), b"done");
        assert_eq!(probe.connects(), 1, "[{}] socket was lost", case.name);
        // Shed work is accounted in `connections_shed` only: `requests`
        // counts the three that reached the handler, not the 503.
        let m = server.metrics();
        assert_eq!(m.requests, 3, "[{}] {m:?}", case.name);
        assert_eq!(m.connections_shed, 1, "[{}] {m:?}", case.name);
        server.stop();
    }
}

#[test]
fn half_closing_client_still_receives_its_full_response() {
    // A peer that sends its request and immediately FINs its write half
    // is still owed the complete response — the reactor must not treat
    // the early EOF as an abandonment.
    for case in reactor_matrix() {
        let server = start(
            case,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        let mut raw = TcpStream::connect(server.addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        raw.write_all(b"GET /dictionary HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        raw.flush().unwrap();
        raw.shutdown(std::net::Shutdown::Write).unwrap(); // FIN before the response
        let mut reply = Vec::new();
        let mut reader = BufReader::new(raw);
        reader.read_to_end(&mut reply).unwrap();
        let text = String::from_utf8_lossy(&reply);
        assert!(text.starts_with("HTTP/1.1 200"), "[{}] {text}", case.name);
        let framed: usize = text
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::to_owned)
            })
            .expect("length-framed response")
            .trim()
            .parse()
            .unwrap();
        let body = &reply[reply.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4..];
        assert_eq!(body.len(), framed, "[{}] body truncated: {text}", case.name);
        assert!(text.contains("tables"), "[{}] {text}", case.name);
        server.stop();
    }
}

#[test]
fn handler_panic_is_contained_to_a_500_and_the_server_survives() {
    for case in reactor_matrix() {
        let server = serve_with(
            EPHEMERAL,
            case.apply(ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            }),
            Arc::new(|req: &HttpRequest| {
                if req.path == "/boom" {
                    panic!("handler exploded");
                }
                HttpResponse::ok("text/plain", "fine")
            }),
        )
        .unwrap();
        let mut client = HttpClient::new(server.addr);
        let resp = client.send("GET", "/boom", None, &[]).unwrap();
        assert_eq!(resp.status, 500);
        // The connection was closed, but the single worker and the
        // reactor both survive to serve the next request.
        assert_eq!(client.request("GET", "/ok", None, &[]).unwrap(), b"fine");
        assert_eq!(
            client.connects(),
            2,
            "[{}] panic closes the conn",
            case.name
        );
        server.stop();
    }
}

#[test]
fn pipelined_burst_completes_in_order_with_a_tiny_pool() {
    for case in reactor_matrix() {
        let server = start(
            case,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        let mut raw = TcpStream::connect(server.addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut burst = String::new();
        for _ in 0..5 {
            burst.push_str("GET /stats HTTP/1.1\r\nHost: x\r\n\r\n");
        }
        raw.write_all(burst.as_bytes()).unwrap();
        raw.flush().unwrap();

        let mut reader = BufReader::new(raw);
        for i in 0..5 {
            let mut status = String::new();
            reader.read_line(&mut status).unwrap();
            assert!(
                status.contains("200"),
                "[{}] response {i}: {status}",
                case.name
            );
            let mut len = 0usize;
            loop {
                let mut hline = String::new();
                reader.read_line(&mut hline).unwrap();
                if hline.trim_end().is_empty() {
                    break;
                }
                if let Some((k, v)) = hline.trim_end().split_once(':') {
                    if k.eq_ignore_ascii_case("content-length") {
                        len = v.trim().parse().unwrap();
                    }
                }
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).unwrap();
            assert!(String::from_utf8_lossy(&body).contains("cache_hits"));
        }
        let m = server.metrics();
        assert_eq!(m.connections_accepted, 1);
        assert_eq!(m.requests, 5);
        assert_eq!(m.keepalive_reuses, 4);
        server.stop();
    }
}

#[test]
fn open_connections_gauge_rises_and_falls() {
    for case in reactor_matrix() {
        let server = start(
            case,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        );
        assert_eq!(server.metrics().open_connections, 0);
        let fleet = IdleFleet::open(server.addr, 3);
        assert_eq!(server.metrics().open_connections, 3);
        drop(fleet); // clients close their sockets…
        wait_for(&server, |open| open == 0, "gauge to fall after closes");
        // …and the cumulative counters are untouched by the closes.
        let m = server.metrics();
        assert_eq!(m.connections_accepted, 3);
        assert_eq!(m.requests, 3);
        // The per-shard gauges agree with the global one at both ends.
        assert!(
            m.open_per_shard.iter().all(|&open| open == 0),
            "[{}] {m:?}",
            case.name
        );
        server.stop();
    }
}

/// Sharding is observable end-to-end: every shard's event loop runs, and
/// the per-shard wakeup counters sum to the global gauge.
#[test]
fn every_shard_runs_its_own_event_loop() {
    let case = support::EPOLL4; // resolves to poll on non-Linux: same contract
    let server = start(
        case,
        ServerConfig {
            workers: 2,
            idle_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    );
    // 8 connections round-robin onto 4 shards: 2 each, and each shard's
    // loop must have iterated to admit + serve its slice.
    let fleet = IdleFleet::open(server.addr, 8);
    let m = server.metrics();
    assert_eq!(m.open_per_shard, vec![2, 2, 2, 2], "{m:?}");
    assert_eq!(m.wakeups_per_shard.len(), 4);
    assert!(
        m.wakeups_per_shard.iter().all(|&w| w > 0),
        "a shard never woke: {m:?}"
    );
    assert_eq!(
        m.wakeups_per_shard.iter().sum::<u64>(),
        m.reactor_wakeups,
        "{m:?}"
    );
    drop(fleet);
    server.stop();
}

/// The persistent-interest-set property itself, asserted on syscall
/// shape: `interest_ops` counts pollfd slots submitted per wakeup under
/// poll (so it scales with fleet size) and `epoll_ctl` calls under epoll
/// (so it does not). Linux-only: elsewhere the epoll case *is* poll.
#[cfg(target_os = "linux")]
#[test]
fn epoll_interest_set_does_not_rescale_with_the_idle_fleet() {
    use coin_server::ReactorBackend;

    // Interest-set syscall traffic generated by 20 hot keep-alive
    // requests while `fleet_size` idle connections sit parked.
    let measure = |backend: ReactorBackend, fleet_size: usize| -> u64 {
        let server = start(
            TransportCase {
                name: "shape",
                transport: coin_server::Transport::Reactor,
                backend,
                shards: 1,
            },
            ServerConfig {
                workers: 2,
                idle_timeout: Duration::from_secs(300),
                ..ServerConfig::default()
            },
        );
        let fleet = IdleFleet::open(server.addr, fleet_size);
        let mut hot = HttpClient::new(server.addr);
        hot.request("GET", "/stats", None, &[]).unwrap(); // warm the socket up
        let before = server.metrics().interest_ops;
        for _ in 0..20 {
            hot.request("GET", "/stats", None, &[]).unwrap();
        }
        let delta = server.metrics().interest_ops - before;
        drop(fleet);
        server.stop();
        delta
    };

    let epoll_small = measure(ReactorBackend::Epoll, 8);
    let epoll_large = measure(ReactorBackend::Epoll, 64);
    // Persistent interest set: the idle fleet was registered once, so
    // the traffic for 20 hot requests is independent of its size (wide
    // slack — scheduling noise varies the per-request MOD count, but
    // nothing here may scale by the 8× fleet growth).
    assert!(
        epoll_large <= epoll_small * 3 + 64,
        "epoll interest traffic scaled with idle fleet size: \
         {epoll_small} ops @ 8 conns vs {epoll_large} ops @ 64 conns"
    );

    let poll_large = measure(ReactorBackend::Poll, 64);
    // poll(2) re-submits every slot on every wakeup: 20 requests over a
    // 64-connection fleet must cross the syscall boundary thousands of
    // times — an order of magnitude past epoll on the same workload.
    assert!(
        poll_large >= 64 * 10,
        "poll rebuild traffic implausibly low: {poll_large} ops"
    );
    assert!(
        poll_large > epoll_large * 4,
        "epoll ({epoll_large} ops) shows no structural advantage over \
         poll ({poll_large} ops) at 64 idle connections"
    );
}
