//! The load-generator harness itself, exercised at small scale: bounded,
//! deterministic, and correct in both connection modes. (Throughput is
//! measured by `crates/bench/benches/server_load.rs` over the same
//! harness.)

use std::sync::Arc;
use std::time::Duration;

use coin_core::fixtures::figure2_system;
use coin_server::{start_server_with, ServerConfig};

#[path = "support/load.rs"]
mod load;
#[path = "support/transport.rs"]
mod support;

use load::{expected_requests, run_load, run_mixed_fleet, LoadConfig, Workload};

fn server(workers: usize) -> coin_server::ServerHandle {
    start_server_with(
        Arc::new(figure2_system()),
        support::EPHEMERAL,
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn keep_alive_load_completes_without_errors() {
    let server = server(8);
    let cfg = LoadConfig {
        clients: 8,
        requests_per_client: 25,
        keep_alive: true,
        workload: Workload::QueryMix,
        seed: 42,
        skew: 0,
        time_limit: Duration::from_secs(30),
    };
    let report = run_load(server.addr, &cfg);
    assert_eq!(report.ok, 200, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.shed, 0, "{report:?}");
    assert_eq!(report.timed_out, 0, "{report:?}");
    assert_eq!(report.connects, 8, "one connection per keep-alive client");
    let m = server.metrics();
    assert!(m.requests >= 200, "{m:?}");
    assert!(m.keepalive_reuses >= 192, "{m:?}");
    server.stop();
}

#[test]
fn per_request_mode_opens_a_connection_per_request() {
    let server = server(8);
    let cfg = LoadConfig {
        clients: 4,
        requests_per_client: 10,
        keep_alive: false,
        workload: Workload::QueryMix,
        seed: 42,
        skew: 0,
        time_limit: Duration::from_secs(30),
    };
    let report = run_load(server.addr, &cfg);
    assert_eq!(report.ok, 40, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.connects, 40, "fresh TCP connection per request");
    assert_eq!(server.metrics().connections_accepted, 40);
    assert_eq!(server.metrics().keepalive_reuses, 0);
    server.stop();
}

#[test]
fn identical_configs_issue_identical_request_sequences() {
    let server = server(8);
    let cfg = LoadConfig {
        clients: 4,
        requests_per_client: 12,
        keep_alive: true,
        workload: Workload::QueryMix,
        seed: 7,
        skew: 0,
        time_limit: Duration::from_secs(30),
    };
    let a = run_load(server.addr, &cfg);
    let b = run_load(server.addr, &cfg);
    assert_eq!(a.ops_checksum, b.ops_checksum, "same seed, same requests");
    assert_eq!(a.ok, b.ok);
    let other = run_load(
        server.addr,
        &LoadConfig {
            seed: 8,
            ..cfg.clone()
        },
    );
    assert_ne!(
        a.ops_checksum, other.ops_checksum,
        "different seed, different requests"
    );
    server.stop();
}

#[test]
fn time_limit_bounds_the_run() {
    // A zero time budget: every request is counted as timed out, nothing
    // hangs, and the report stays consistent.
    let server = server(2);
    let cfg = LoadConfig {
        clients: 3,
        requests_per_client: 5,
        keep_alive: true,
        workload: Workload::Stats,
        seed: 1,
        skew: 0,
        time_limit: Duration::ZERO,
    };
    let report = run_load(server.addr, &cfg);
    assert_eq!(report.timed_out, 15, "{report:?}");
    assert_eq!(report.requests_issued(), 0);
    server.stop();
}

#[test]
fn skewed_hot_fleet_over_an_idle_fleet_completes_unshed_and_deterministic() {
    // The C10k shape at test scale: an idle fleet 8× the worker pool
    // parked across 4 shards, with a seeded *skewed* hot mix running
    // over it — some clients issue 4× the volume of others. Everything
    // completes (zero shed, zero errors), no parked socket is lost, and
    // the whole run is a pure function of the seed.
    const WORKERS: usize = 4;
    let server = start_server_with(
        Arc::new(figure2_system()),
        support::EPHEMERAL,
        ServerConfig {
            workers: WORKERS,
            reactor_shards: 4,
            idle_timeout: Duration::from_secs(300),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let cfg = LoadConfig {
        clients: 6,
        requests_per_client: 8,
        keep_alive: true,
        workload: Workload::QueryMix,
        seed: 11,
        skew: 4,
        time_limit: Duration::from_secs(30),
    };
    // Skew must actually skew: the per-client multipliers make the total
    // exceed the uniform volume for this seed.
    let expected = expected_requests(&cfg);
    assert!(
        expected > (cfg.clients * cfg.requests_per_client) as u64,
        "seed 11 produces no hot clients ({expected} requests)"
    );

    let a = run_mixed_fleet(server.addr, 8 * WORKERS, &cfg);
    assert_eq!(a.hot.ok, expected, "{a:?}");
    assert_eq!(a.hot.shed, 0, "nothing may be shed: {a:?}");
    assert_eq!(a.hot.errors, 0, "{a:?}");
    assert_eq!(a.hot.timed_out, 0, "{a:?}");
    assert_eq!(a.hot.connects, cfg.clients as u64, "{a:?}");
    assert_eq!(
        a.idle_reconnects, 0,
        "the hot fleet cost parked sockets their lives: {a:?}"
    );

    // Same seed, same traffic — byte-identical request streams.
    let b = run_mixed_fleet(server.addr, 8 * WORKERS, &cfg);
    assert_eq!(a.hot.ops_checksum, b.hot.ops_checksum, "{a:?} vs {b:?}");
    assert_eq!(b.hot.ok, expected);
    assert_eq!(b.idle_reconnects, 0);
    server.stop();
}
