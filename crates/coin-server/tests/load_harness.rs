//! The load-generator harness itself, exercised at small scale: bounded,
//! deterministic, and correct in both connection modes. (Throughput is
//! measured by `crates/bench/benches/server_load.rs` over the same
//! harness.)

use std::sync::Arc;
use std::time::Duration;

use coin_core::fixtures::figure2_system;
use coin_server::{start_server_with, ServerConfig};

#[path = "support/load.rs"]
mod load;

use load::{run_load, LoadConfig, Workload};

fn server(workers: usize) -> coin_server::ServerHandle {
    start_server_with(
        Arc::new(figure2_system()),
        "127.0.0.1:0",
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn keep_alive_load_completes_without_errors() {
    let server = server(8);
    let cfg = LoadConfig {
        clients: 8,
        requests_per_client: 25,
        keep_alive: true,
        workload: Workload::QueryMix,
        seed: 42,
        time_limit: Duration::from_secs(30),
    };
    let report = run_load(server.addr, &cfg);
    assert_eq!(report.ok, 200, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.shed, 0, "{report:?}");
    assert_eq!(report.timed_out, 0, "{report:?}");
    assert_eq!(report.connects, 8, "one connection per keep-alive client");
    let m = server.metrics();
    assert!(m.requests >= 200, "{m:?}");
    assert!(m.keepalive_reuses >= 192, "{m:?}");
    server.stop();
}

#[test]
fn per_request_mode_opens_a_connection_per_request() {
    let server = server(8);
    let cfg = LoadConfig {
        clients: 4,
        requests_per_client: 10,
        keep_alive: false,
        workload: Workload::QueryMix,
        seed: 42,
        time_limit: Duration::from_secs(30),
    };
    let report = run_load(server.addr, &cfg);
    assert_eq!(report.ok, 40, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.connects, 40, "fresh TCP connection per request");
    assert_eq!(server.metrics().connections_accepted, 40);
    assert_eq!(server.metrics().keepalive_reuses, 0);
    server.stop();
}

#[test]
fn identical_configs_issue_identical_request_sequences() {
    let server = server(8);
    let cfg = LoadConfig {
        clients: 4,
        requests_per_client: 12,
        keep_alive: true,
        workload: Workload::QueryMix,
        seed: 7,
        time_limit: Duration::from_secs(30),
    };
    let a = run_load(server.addr, &cfg);
    let b = run_load(server.addr, &cfg);
    assert_eq!(a.ops_checksum, b.ops_checksum, "same seed, same requests");
    assert_eq!(a.ok, b.ok);
    let other = run_load(
        server.addr,
        &LoadConfig {
            seed: 8,
            ..cfg.clone()
        },
    );
    assert_ne!(
        a.ops_checksum, other.ops_checksum,
        "different seed, different requests"
    );
    server.stop();
}

#[test]
fn time_limit_bounds_the_run() {
    // A zero time budget: every request is counted as timed out, nothing
    // hangs, and the report stays consistent.
    let server = server(2);
    let cfg = LoadConfig {
        clients: 3,
        requests_per_client: 5,
        keep_alive: true,
        workload: Workload::Stats,
        seed: 1,
        time_limit: Duration::ZERO,
    };
    let report = run_load(server.addr, &cfg);
    assert_eq!(report.timed_out, 15, "{report:?}");
    assert_eq!(report.requests_issued(), 0);
    server.stop();
}
