//! The transport conformance matrix: every server contract suite
//! (`keepalive_e2e`, `backpressure`, `reactor_e2e`, `streaming_e2e`,
//! `fault_injection`) parameterizes over these cases so the
//! shedding / keep-alive / timeout / mid-stream-abort contract is
//! asserted once per (transport × backend × shard-count) combination,
//! not just on the default.
//!
//! `COIN_TEST_TRANSPORT` narrows a run to one case (values: `threaded`,
//! `poll1`, `poll4`, `epoll1`, `epoll4`, `default`) — CI uses it for
//! the epoll smoke job; locally it isolates a failing combination.
//!
//! Also home to the two flake-hardening primitives every suite routes
//! through: [`EPHEMERAL`] (the single ephemeral-port bind address, so no
//! test can ever hard-code a port and race another) and [`wait_until`]
//! (metric polling with a deadline, replacing fixed sleeps).

#![allow(dead_code)] // shared via #[path]; each test target uses a subset

use std::time::{Duration, Instant};

use coin_server::{ReactorBackend, ServerConfig, Transport};

/// The one bind address test listeners use: loopback, kernel-assigned
/// ephemeral port (read back from `ServerHandle::addr`), so concurrent
/// test processes can never collide on a port.
pub const EPHEMERAL: &str = "127.0.0.1:0";

/// One cell of the conformance matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransportCase {
    pub name: &'static str,
    pub transport: Transport,
    pub backend: ReactorBackend,
    pub shards: usize,
}

impl TransportCase {
    /// Overlay this case's transport settings on a base config.
    pub fn apply(self, mut cfg: ServerConfig) -> ServerConfig {
        cfg.transport = self.transport;
        cfg.reactor_backend = self.backend;
        cfg.reactor_shards = self.shards;
        cfg
    }
}

pub const THREADED: TransportCase = TransportCase {
    name: "threaded",
    transport: Transport::Threaded,
    backend: ReactorBackend::Auto,
    shards: 0,
};
pub const POLL1: TransportCase = TransportCase {
    name: "poll1",
    transport: Transport::Reactor,
    backend: ReactorBackend::Poll,
    shards: 1,
};
pub const POLL4: TransportCase = TransportCase {
    name: "poll4",
    transport: Transport::Reactor,
    backend: ReactorBackend::Poll,
    shards: 4,
};
pub const EPOLL1: TransportCase = TransportCase {
    name: "epoll1",
    transport: Transport::Reactor,
    backend: ReactorBackend::Epoll,
    shards: 1,
};
pub const EPOLL4: TransportCase = TransportCase {
    name: "epoll4",
    transport: Transport::Reactor,
    backend: ReactorBackend::Epoll,
    shards: 4,
};
/// Whatever `ServerConfig::default()` resolves to on this host.
pub const DEFAULT: TransportCase = TransportCase {
    name: "default",
    transport: Transport::Reactor,
    backend: ReactorBackend::Auto,
    shards: 0,
};

/// Every contract-bearing combination, including the threaded
/// transport. Use for suites whose assertions are transport-agnostic.
pub fn full_matrix() -> Vec<TransportCase> {
    filter(vec![THREADED, POLL1, POLL4, EPOLL1, EPOLL4])
}

/// The reactor-only combinations (backend × shard count). Use for
/// suites that assert reactor-specific semantics (request-level
/// shedding, `reactor_wakeups`, the open-connection gauge exceeding the
/// worker pool).
pub fn reactor_matrix() -> Vec<TransportCase> {
    filter(vec![POLL1, POLL4, EPOLL1, EPOLL4])
}

/// Honor `COIN_TEST_TRANSPORT`: run the whole matrix normally, one
/// named case when set. Unknown names fail loudly rather than silently
/// running nothing.
fn filter(cases: Vec<TransportCase>) -> Vec<TransportCase> {
    let Ok(wanted) = std::env::var("COIN_TEST_TRANSPORT") else {
        return cases;
    };
    let all = [THREADED, POLL1, POLL4, EPOLL1, EPOLL4, DEFAULT];
    assert!(
        all.iter().any(|c| c.name == wanted),
        "COIN_TEST_TRANSPORT={wanted} names no transport case \
         (valid: threaded, poll1, poll4, epoll1, epoll4, default)"
    );
    // A case outside this suite's matrix filters to an empty run — the
    // suite simply has nothing to assert under that transport.
    cases.into_iter().filter(|c| c.name == wanted).collect()
}

/// Poll `pred` until it holds, failing after 10 s — the readiness
/// signal that replaces fixed sleeps in the server test suites.
pub fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting until {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}
