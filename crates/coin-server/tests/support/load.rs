//! Deterministic multi-client load generator for the mediation server.
//!
//! Drives `clients` concurrent client threads, each issuing
//! `requests_per_client` requests drawn from a seeded workload mix, in
//! either keep-alive mode (one persistent [`HttpClient`] per client) or
//! per-request-connection mode (a fresh TCP connection per request — the
//! HTTP/1.0-era baseline). Request choice is a pure function of the
//! configured seed and the client index, so two runs with the same
//! config issue byte-identical request sequences (`ops_checksum` proves
//! it), and every run is bounded by `time_limit`.
//!
//! Shared (via `#[path]`) by the `coin-server` integration tests and the
//! `server_load` criterion bench, so throughput numbers and correctness
//! tests exercise the same traffic shape.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use coin_server::http::{self, HttpClient};

/// Queries of the figure-2 deployment, from cheap to join-heavy.
const QUERY_MIX: &[&str] = &[
    "SELECT r1.cname, r1.revenue FROM r1",
    "SELECT r2.cname, r2.expenses FROM r2",
    "SELECT r1.cname FROM r1 WHERE r1.revenue > 50",
    "SELECT r1.cname, r1.revenue FROM r1, r2 \
     WHERE r1.cname = r2.cname AND r1.revenue > r2.expenses",
];

/// What each generated request does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// `GET /stats` only — minimal handler work, so the measurement
    /// isolates transport cost (connection setup vs reuse).
    Stats,
    /// Seeded mix of mediated `POST /query` (against the figure-2
    /// deployment, context `c_recv`) and `GET /stats`.
    QueryMix,
}

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    pub clients: usize,
    pub requests_per_client: usize,
    /// `true`: one persistent connection per client; `false`: a fresh TCP
    /// connection per request.
    pub keep_alive: bool,
    pub workload: Workload,
    /// Base seed; client `i` derives its own stream from `seed` and `i`.
    pub seed: u64,
    /// Per-client volume skew. `0`: every client issues exactly
    /// `requests_per_client` requests. `k > 0`: client `i` issues
    /// `requests_per_client × m_i` where `m_i ∈ 1..=k` is drawn
    /// deterministically from `seed` and `i` — a hot/cold mix in which
    /// some clients hammer the server while others trickle, without
    /// giving up run-to-run determinism.
    pub skew: u64,
    /// Hard wall-clock bound; requests not issued by then count as
    /// `timed_out` instead of running forever.
    pub time_limit: Duration,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 8,
            requests_per_client: 50,
            keep_alive: true,
            workload: Workload::QueryMix,
            seed: 42,
            skew: 0,
            time_limit: Duration::from_secs(60),
        }
    }
}

/// Client `i`'s volume multiplier under `cfg.skew` — a pure function of
/// the config, so callers can predict exact request counts.
fn client_multiplier(cfg: &LoadConfig, client: usize) -> u64 {
    if cfg.skew == 0 {
        return 1;
    }
    // A different derivation than the op stream, so skew never perturbs
    // which requests a client issues, only how many.
    let mut rng = Rng::new(
        cfg.seed
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(0x5bf0_3635 ^ client as u64),
    );
    1 + rng.next_u64() % cfg.skew
}

/// Exactly how many requests `run_load` will issue for `cfg` (absent a
/// time-limit cutoff) — the zero-shed assertions compare against this.
#[allow(dead_code)]
pub fn expected_requests(cfg: &LoadConfig) -> u64 {
    (0..cfg.clients)
        .map(|c| client_multiplier(cfg, c) * cfg.requests_per_client as u64)
        .sum()
}

/// Aggregate outcome of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests answered 2xx.
    pub ok: u64,
    /// Requests answered `503` (load shed by the server).
    pub shed: u64,
    /// Requests that failed any other way.
    pub errors: u64,
    /// Requests skipped because the time limit expired.
    pub timed_out: u64,
    /// TCP connections the clients opened in total.
    pub connects: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Order-insensitive digest of every (client, op) issued — equal
    /// across runs with equal configs, proving determinism.
    pub ops_checksum: u64,
}

impl LoadReport {
    // Included via `#[path]` from several roots; not every consumer calls
    // every accessor.
    #[allow(dead_code)]
    pub fn requests_issued(&self) -> u64 {
        self.ok + self.shed + self.errors
    }

    /// Successful requests per second of wall-clock time.
    #[allow(dead_code)]
    pub fn requests_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.ok as f64 / self.elapsed.as_secs_f64()
    }
}

/// xorshift64 — deterministic, dependency-free request-choice stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn fold_checksum(acc: u64, client: usize, op: u64) -> u64 {
    // Commutative over clients (join order must not matter), sensitive to
    // per-client op order via the multiplier.
    acc ^ (op
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(client as u64))
}

fn query_payload(sql: &str) -> String {
    format!("{{\"sql\":\"{sql}\",\"context\":\"c_recv\",\"mode\":\"mediated\"}}")
}

/// Drive the configured load against `addr` and aggregate the outcome.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let started = Instant::now();
    let deadline = started + cfg.time_limit;
    let handles: Vec<_> = (0..cfg.clients)
        .map(|client| {
            let cfg = cfg.clone();
            std::thread::spawn(move || run_client(addr, &cfg, client, deadline))
        })
        .collect();
    let mut report = LoadReport::default();
    for h in handles {
        let part = h.join().expect("load client panicked");
        report.ok += part.ok;
        report.shed += part.shed;
        report.errors += part.errors;
        report.timed_out += part.timed_out;
        report.connects += part.connects;
        report.ops_checksum ^= part.ops_checksum;
    }
    report.elapsed = started.elapsed();
    report
}

/// Outcome of [`run_mixed_fleet`]: the hot traffic's report plus the
/// idle fleet's fate.
#[allow(dead_code)]
#[derive(Debug)]
pub struct MixReport {
    /// The hot clients' aggregate outcome.
    pub hot: LoadReport,
    /// Idle connections that had to reconnect when pinged after the hot
    /// run — 0 means the server kept every parked socket alive while
    /// serving the hot fleet.
    pub idle_reconnects: u64,
}

/// The C10k-shaped workload: park `idle_conns` established keep-alive
/// connections, drive the configured hot load over them, then ping every
/// parked socket to prove it survived. The idle fleet costs the server
/// per-connection state on every shard but demands no work while the hot
/// fleet runs.
#[allow(dead_code)]
pub fn run_mixed_fleet(addr: SocketAddr, idle_conns: usize, cfg: &LoadConfig) -> MixReport {
    let mut fleet = IdleFleet::open(addr, idle_conns);
    let hot = run_load(addr, cfg);
    let idle_reconnects = fleet.ping_all();
    MixReport {
        hot,
        idle_reconnects,
    }
}

fn run_client(addr: SocketAddr, cfg: &LoadConfig, client: usize, deadline: Instant) -> LoadReport {
    let mut rng = Rng::new(
        cfg.seed
            .wrapping_mul(0x1000_0001)
            .wrapping_add(client as u64),
    );
    let mut keep = cfg.keep_alive.then(|| HttpClient::new(addr));
    let mut report = LoadReport::default();
    let total = cfg.requests_per_client * client_multiplier(cfg, client) as usize;
    for seq in 0..total {
        if Instant::now() >= deadline {
            report.timed_out += (total - seq) as u64;
            break;
        }
        let op = rng.next_u64();
        // Folded only for requests actually issued, so the checksum is
        // the documented digest of issued traffic.
        report.ops_checksum = fold_checksum(report.ops_checksum, client, op ^ seq as u64);
        let outcome = match chosen_op(cfg.workload, op) {
            Op::Stats => match &mut keep {
                Some(c) => c.send("GET", "/stats", None, &[]).map(|r| r.status),
                None => {
                    report.connects += 1;
                    http::get(&addr, "/stats").map(|_| 200)
                }
            },
            Op::Query(sql) => {
                let body = query_payload(sql);
                match &mut keep {
                    Some(c) => c
                        .send("POST", "/query", Some("application/json"), body.as_bytes())
                        .map(|r| r.status),
                    None => {
                        report.connects += 1;
                        http::post(&addr, "/query", "application/json", body.as_bytes())
                            .map(|_| 200)
                    }
                }
            }
        };
        match outcome {
            Ok(status) if (200..300).contains(&status) => report.ok += 1,
            Ok(503) | Err(http::HttpError::Status(503, _)) => report.shed += 1,
            Ok(_) | Err(_) => report.errors += 1,
        }
    }
    if let Some(c) = keep {
        report.connects += c.connects();
    }
    report
}

enum Op {
    Stats,
    Query(&'static str),
}

/// A fleet of established keep-alive connections held open and idle —
/// the workload shape that breaks thread-per-connection transports: the
/// connections consume server-side state but demand no work.
///
/// Included via `#[path]` from several roots; not every consumer uses it.
#[allow(dead_code)]
pub struct IdleFleet {
    clients: Vec<HttpClient>,
}

#[allow(dead_code)]
impl IdleFleet {
    /// Open `size` connections, each established server-side by one
    /// completed `GET /stats` round-trip, then left idle.
    pub fn open(addr: SocketAddr, size: usize) -> IdleFleet {
        let mut clients = Vec::with_capacity(size);
        for i in 0..size {
            let mut c = HttpClient::new(addr);
            let resp = c
                .send("GET", "/stats", None, &[])
                .unwrap_or_else(|e| panic!("idle connection {i} failed to establish: {e}"));
            assert_eq!(resp.status, 200, "idle connection {i} shed or refused");
            clients.push(c);
        }
        IdleFleet { clients }
    }

    pub fn len(&self) -> usize {
        self.clients.len()
    }

    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// One more request on every held connection, proving each socket is
    /// still alive server-side. Returns how many had to reconnect (0
    /// when no idle timeout fired in between).
    pub fn ping_all(&mut self) -> u64 {
        let mut reconnects = 0;
        for (i, c) in self.clients.iter_mut().enumerate() {
            let before = c.connects();
            let resp = c
                .send("GET", "/stats", None, &[])
                .unwrap_or_else(|e| panic!("idle connection {i} died: {e}"));
            assert_eq!(resp.status, 200, "idle connection {i} refused on reuse");
            reconnects += c.connects() - before;
        }
        reconnects
    }
}

fn chosen_op(workload: Workload, op: u64) -> Op {
    match workload {
        Workload::Stats => Op::Stats,
        Workload::QueryMix => {
            // 1 in 4 requests polls /stats; the rest run mediated queries.
            if op.is_multiple_of(4) {
                Op::Stats
            } else {
                Op::Query(QUERY_MIX[(op as usize / 4) % QUERY_MIX.len()])
            }
        }
    }
}
