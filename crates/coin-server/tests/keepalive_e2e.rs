//! Keep-alive transport e2e: one connection serving many sequential
//! mediation requests, exact framing (`Content-Length` or chunked),
//! pipelining, idle timeout, `Connection: close`, and fault isolation
//! for malformed or oversized requests.
//!
//! The whole suite runs over the transport conformance matrix
//! (threaded + poll/epoll × 1/4 shards): the keep-alive dialect is a
//! wire contract and must not vary with the transport behind it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use coin_core::fixtures::figure2_system;
use coin_server::http::{HttpClient, HttpError};
use coin_server::{start_server_with, Connection, ServerConfig, ServerHandle, Transport};

#[path = "support/transport.rs"]
mod support;

use support::{full_matrix, wait_until, TransportCase, EPHEMERAL};

const Q1: &str = "SELECT r1.cname, r1.revenue FROM r1, r2 \
                  WHERE r1.cname = r2.cname AND r1.revenue > r2.expenses";

fn start(case: TransportCase, config: ServerConfig) -> ServerHandle {
    start_server_with(Arc::new(figure2_system()), EPHEMERAL, case.apply(config)).unwrap()
}

fn query_body(sql: &str) -> String {
    format!("{{\"sql\":\"{sql}\",\"context\":\"c_recv\",\"mode\":\"mediated\"}}")
}

#[test]
fn one_connection_serves_many_query_and_stats_requests() {
    for case in full_matrix() {
        let server = start(case, ServerConfig::default());
        let mut client = HttpClient::new(server.addr);
        for round in 0..10 {
            let body = client
                .request(
                    "POST",
                    "/query",
                    Some("application/json"),
                    query_body(Q1).as_bytes(),
                )
                .unwrap();
            let text = String::from_utf8_lossy(&body);
            assert!(
                text.contains("NTT"),
                "[{}] round {round}: {text}",
                case.name
            );
            let stats = client.request("GET", "/stats", None, &[]).unwrap();
            assert!(String::from_utf8_lossy(&stats).contains("cache_hits"));
        }
        assert_eq!(client.connects(), 1, "[{}] one TCP connection", case.name);
        assert_eq!(client.requests(), 20);
        let m = server.metrics();
        assert_eq!(m.connections_accepted, 1, "[{}] {m:?}", case.name);
        assert_eq!(m.requests, 20);
        assert_eq!(m.keepalive_reuses, 19);
        server.stop();
    }
}

#[test]
fn odbc_connection_reuses_its_socket() {
    for case in full_matrix() {
        let server = start(case, ServerConfig::default());
        let conn = Connection::open(server.addr, "c_recv");
        for _ in 0..5 {
            let rs = conn.statement().execute(Q1).unwrap();
            assert_eq!(rs.len(), 1);
            conn.server_stats().unwrap();
        }
        assert_eq!(conn.transport_connects(), 1, "[{}]", case.name);
        assert_eq!(server.metrics().connections_accepted, 1);
        server.stop();
    }
}

#[test]
fn responses_carry_exact_framing() {
    // Keep-alive requires self-delimiting responses: streamed `/query`
    // answers are `Transfer-Encoding: chunked`, everything else carries
    // an exact `Content-Length`. Both kinds interleave on one socket.
    for case in full_matrix() {
        let server = start(case, ServerConfig::default());
        let mut client = HttpClient::new(server.addr);
        for _ in 0..3 {
            let resp = client
                .send(
                    "POST",
                    "/query",
                    Some("application/json"),
                    query_body(Q1).as_bytes(),
                )
                .unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(
                resp.headers.get("transfer-encoding").map(String::as_str),
                Some("chunked"),
                "[{}] streamed /query responses are chunk-framed",
                case.name
            );
            assert!(!resp.headers.contains_key("content-length"));
            assert_eq!(
                resp.headers.get("connection").map(String::as_str),
                Some("keep-alive")
            );

            let resp = client.send("GET", "/stats", None, &[]).unwrap();
            assert_eq!(resp.status, 200);
            let framed: usize = resp
                .headers
                .get("content-length")
                .expect("non-streamed responses must be length-framed")
                .parse()
                .unwrap();
            assert_eq!(framed, resp.body.len());
            assert_eq!(
                resp.headers.get("connection").map(String::as_str),
                Some("keep-alive")
            );
        }
        assert_eq!(client.connects(), 1, "[{}] one socket", case.name);
        server.stop();
    }
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    for case in full_matrix() {
        let server = start(case, ServerConfig::default());
        let mut raw = TcpStream::connect(server.addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // Two requests written back-to-back before reading anything.
        let pipelined = "GET /stats HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n\
                         GET /dictionary HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n";
        raw.write_all(pipelined.as_bytes()).unwrap();
        raw.flush().unwrap();

        let mut reader = BufReader::new(raw);
        let mut bodies = Vec::new();
        for _ in 0..2 {
            let mut status = String::new();
            reader.read_line(&mut status).unwrap();
            assert!(status.contains("200"), "[{}] {status}", case.name);
            let mut len = 0usize;
            loop {
                let mut hline = String::new();
                reader.read_line(&mut hline).unwrap();
                if hline.trim_end().is_empty() {
                    break;
                }
                if let Some((k, v)) = hline.trim_end().split_once(':') {
                    if k.eq_ignore_ascii_case("content-length") {
                        len = v.trim().parse().unwrap();
                    }
                }
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).unwrap();
            bodies.push(String::from_utf8_lossy(&body).into_owned());
        }
        assert!(bodies[0].contains("cache_hits"), "first answer is /stats");
        assert!(bodies[1].contains("tables"), "second answer is /dictionary");
        assert_eq!(server.metrics().connections_accepted, 1);
        server.stop();
    }
}

#[test]
fn idle_timeout_closes_the_connection_and_client_reconnects() {
    for case in full_matrix() {
        let server = start(
            case,
            ServerConfig {
                idle_timeout: Duration::from_millis(100),
                ..ServerConfig::default()
            },
        );
        let mut client = HttpClient::new(server.addr);
        client.request("GET", "/stats", None, &[]).unwrap();
        assert_eq!(client.connects(), 1);
        // Outlive the server's idle timeout — the open-connection gauge
        // falling to zero is the signal that the server reaped the
        // socket (a fixed sleep here was a flake under load).
        wait_until("the idle socket is reaped", || {
            server.metrics().open_connections == 0
        });
        // The pooled socket is stale; the next request transparently
        // reconnects.
        client.request("GET", "/stats", None, &[]).unwrap();
        assert_eq!(client.connects(), 2, "[{}] socket replaced", case.name);
        assert_eq!(server.metrics().connections_accepted, 2);
        server.stop();
    }
}

#[test]
fn stale_socket_replay_is_method_aware() {
    for case in full_matrix() {
        let server = start(
            case,
            ServerConfig {
                idle_timeout: Duration::from_millis(100),
                ..ServerConfig::default()
            },
        );
        // A POST through the default policy must NOT be replayed on the
        // stale-socket signature: the disconnect surfaces as an error.
        let mut client = HttpClient::new(server.addr);
        client
            .request(
                "POST",
                "/query",
                Some("application/json"),
                query_body(Q1).as_bytes(),
            )
            .unwrap();
        wait_until("the idle socket is reaped", || {
            server.metrics().open_connections == 0
        });
        let second = client.send(
            "POST",
            "/query",
            Some("application/json"),
            query_body(Q1).as_bytes(),
        );
        assert!(
            matches!(second, Err(HttpError::Io(_))),
            "[{}] non-idempotent request must not be replayed: {second:?}",
            case.name
        );

        // The same POST with the caller vouching for idempotency is
        // transparently replayed on a fresh socket (as `Connection` does
        // for the read-only /query endpoint).
        let mut client = HttpClient::new(server.addr);
        client
            .request(
                "POST",
                "/query",
                Some("application/json"),
                query_body(Q1).as_bytes(),
            )
            .unwrap();
        wait_until("the idle socket is reaped again", || {
            server.metrics().open_connections == 0
        });
        let resp = client
            .send_assuming_idempotent(
                "POST",
                "/query",
                Some("application/json"),
                query_body(Q1).as_bytes(),
            )
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(client.connects(), 2, "[{}] replay reconnected", case.name);
        server.stop();
    }
}

#[test]
fn connection_close_header_is_honored() {
    for case in full_matrix() {
        let server = start(case, ServerConfig::default());
        let mut raw = TcpStream::connect(server.addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        raw.write_all(b"GET /stats HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        raw.flush().unwrap();
        let mut reply = Vec::new();
        let mut reader = BufReader::new(raw);
        // The server must answer and then close: read_to_end terminates.
        reader.read_to_end(&mut reply).unwrap();
        let text = String::from_utf8_lossy(&reply);
        assert!(text.starts_with("HTTP/1.1 200"), "[{}] {text}", case.name);
        assert!(text.to_ascii_lowercase().contains("connection: close"));
        server.stop();
    }
}

#[test]
fn http_10_defaults_to_close() {
    for case in full_matrix() {
        let server = start(case, ServerConfig::default());
        let mut raw = TcpStream::connect(server.addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        raw.write_all(b"GET /stats HTTP/1.0\r\nHost: x\r\n\r\n")
            .unwrap();
        raw.flush().unwrap();
        let mut reply = Vec::new();
        BufReader::new(raw).read_to_end(&mut reply).unwrap();
        let text = String::from_utf8_lossy(&reply);
        assert!(text.contains("200"), "[{}] {text}", case.name);
        assert!(text.to_ascii_lowercase().contains("connection: close"));
        server.stop();
    }
}

#[test]
fn max_requests_per_connection_is_enforced() {
    for case in full_matrix() {
        let server = start(
            case,
            ServerConfig {
                max_requests_per_connection: 3,
                ..ServerConfig::default()
            },
        );
        let mut client = HttpClient::new(server.addr);
        for _ in 0..6 {
            client.request("GET", "/stats", None, &[]).unwrap();
        }
        assert_eq!(client.connects(), 2, "[{}] recycled after 3", case.name);
        server.stop();
    }
}

#[test]
fn malformed_framing_gets_4xx_without_killing_the_worker() {
    for case in full_matrix() {
        let server = start(
            case,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        for garbage in [
            "NONSENSE\r\n\r\n",
            "GET\r\n\r\n",
            "GET /stats JUNK/9\r\n\r\n",
            "POST /query HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        ] {
            let mut raw = TcpStream::connect(server.addr).unwrap();
            raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            raw.write_all(garbage.as_bytes()).unwrap();
            raw.flush().unwrap();
            let mut status = String::new();
            BufReader::new(raw).read_line(&mut status).unwrap();
            assert!(
                status.contains("400"),
                "[{}] {garbage:?} -> {status}",
                case.name
            );
        }
        // The single worker survived all four bad connections.
        let conn = Connection::open(server.addr, "c_recv");
        assert_eq!(conn.statement().execute(Q1).unwrap().len(), 1);
        assert_eq!(server.metrics().malformed_requests, 4, "[{}]", case.name);
        server.stop();
    }
}

#[test]
fn stalled_request_gets_408_within_the_read_deadline() {
    // Slow-loris defense: a request that starts but never finishes must
    // be answered 408 once `read_timeout` elapses, not held forever.
    for case in full_matrix() {
        let server = start(
            case,
            ServerConfig {
                read_timeout: Duration::from_millis(150),
                ..ServerConfig::default()
            },
        );
        let mut raw = TcpStream::connect(server.addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        raw.write_all(b"GET /stats HT").unwrap(); // partial request line
        raw.flush().unwrap();
        let mut reply = Vec::new();
        BufReader::new(raw).read_to_end(&mut reply).unwrap();
        let text = String::from_utf8_lossy(&reply);
        assert!(text.contains("408"), "[{}] {text}", case.name);
        assert!(text.to_ascii_lowercase().contains("connection: close"));
        assert_eq!(server.metrics().request_timeouts, 1, "[{}]", case.name);
        // The worker is free again.
        let conn = Connection::open(server.addr, "c_recv");
        assert_eq!(conn.statement().execute(Q1).unwrap().len(), 1);
        server.stop();
    }
}

#[test]
fn oversized_header_gets_431() {
    for case in full_matrix() {
        let server = start(case, ServerConfig::default());
        let mut raw = TcpStream::connect(server.addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // One header line just past the 8 KiB line cap (small enough to
        // fit in the socket buffer, so the write never races the
        // server's close).
        let pad = "x".repeat(10 * 1024);
        raw.write_all(format!("GET /stats HTTP/1.1\r\nHost: x\r\nX-Pad: {pad}\r\n\r\n").as_bytes())
            .unwrap();
        raw.flush().unwrap();
        let mut reply = Vec::new();
        BufReader::new(raw).read_to_end(&mut reply).unwrap();
        let text = String::from_utf8_lossy(&reply);
        assert!(text.contains("431"), "[{}] {text}", case.name);
        server.stop();
    }
}

#[test]
fn oversized_body_gets_413_and_connection_close() {
    for case in full_matrix() {
        let server = start(
            case,
            ServerConfig {
                workers: 1,
                max_body_bytes: 1024,
                ..ServerConfig::default()
            },
        );
        let mut raw = TcpStream::connect(server.addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        raw.write_all(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 10000\r\n\r\n")
            .unwrap();
        raw.flush().unwrap();
        let mut reply = Vec::new();
        BufReader::new(raw).read_to_end(&mut reply).unwrap();
        let text = String::from_utf8_lossy(&reply);
        assert!(text.contains("413"), "[{}] {text}", case.name);
        assert!(text.to_ascii_lowercase().contains("connection: close"));
        // Worker lives on.
        let conn = Connection::open(server.addr, "c_recv");
        assert_eq!(conn.statement().execute(Q1).unwrap().len(), 1);
        server.stop();
    }
}

#[test]
fn threaded_transport_speaks_the_same_keepalive_dialect() {
    // The legacy thread-per-connection transport stays available behind
    // `ServerConfig::transport` and must behave identically for a
    // fleet that fits its worker pool. (Kept outside the matrix: the
    // zero-wakeups assertion is meaningful only here.)
    let server = start(
        support::THREADED,
        ServerConfig {
            transport: Transport::Threaded,
            ..ServerConfig::default()
        },
    );
    let mut client = HttpClient::new(server.addr);
    for _ in 0..5 {
        let body = client
            .request(
                "POST",
                "/query",
                Some("application/json"),
                query_body(Q1).as_bytes(),
            )
            .unwrap();
        assert!(String::from_utf8_lossy(&body).contains("NTT"));
    }
    assert_eq!(client.connects(), 1);
    let m = server.metrics();
    assert_eq!(m.connections_accepted, 1);
    assert_eq!(m.requests, 5);
    assert_eq!(m.keepalive_reuses, 4);
    assert_eq!(m.open_connections, 1, "gauge works under threaded too");
    assert_eq!(m.reactor_wakeups, 0, "no readiness loop in threaded mode");
    drop(client);
    server.stop();
}

#[test]
fn keep_alive_can_be_disabled_server_side() {
    for case in full_matrix() {
        let server = start(
            case,
            ServerConfig {
                keep_alive: false,
                ..ServerConfig::default()
            },
        );
        let mut client = HttpClient::new(server.addr);
        for _ in 0..3 {
            let resp = client.send("GET", "/stats", None, &[]).unwrap();
            assert_eq!(
                resp.headers.get("connection").map(String::as_str),
                Some("close")
            );
        }
        assert_eq!(client.connects(), 3, "[{}] fresh conn each", case.name);
        server.stop();
    }
}
