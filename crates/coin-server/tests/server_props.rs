//! Property test: interleaved concurrent queries and `add_*` mutations
//! through the server never yield a stale-epoch answer.
//!
//! A mutator thread keeps administering new sources (each `add_source` +
//! `add_context` + `add_elevation` bumps the model epoch) while client
//! threads hammer `/query` over keep-alive connections. Every response
//! reports the `plan_epoch` its plan was compiled at; the invariant is
//! that the epoch is consistent with the data the response returns:
//!
//! * `plan_epoch` ≥ the epoch at which the queried table finished
//!   registration (a plan from before the table existed could only be
//!   stale garbage);
//! * `plan_epoch` ≤ the model epoch observed after the response;
//! * the rows equal the deterministic oracle answer for that table — a
//!   torn read against a half-registered model would break this.

use std::sync::{Arc, Mutex, RwLock};

use coin_core::fixtures::{add_synthetic_source, synthetic_system, Rng, CURRENCIES};
use coin_core::CoinSystem;
use coin_server::{start_server_shared, Connection, ServerConfig};
use proptest::prelude::*;

/// Oracle conversion: (amount, source currency, source scale) → USD units
/// (the synthetic fixture's receiver context is USD with scale 1).
fn to_usd(amount: i64, currency: &str, scale: i64) -> f64 {
    let usd_rates = [1.0, 0.0096, 1.18, 1.64, 0.70];
    let idx = CURRENCIES.iter().position(|c| *c == currency).unwrap();
    amount as f64 * scale as f64 * usd_rates[idx]
}

/// The synthetic fixture assigns source `i` currency `CURRENCIES[i % 5]`
/// and scale `[1, 1000, 1_000_000][i % 3]`.
fn context_of(i: usize) -> (&'static str, i64) {
    let scales = [1i64, 1000, 1_000_000];
    (CURRENCIES[i % CURRENCIES.len()], scales[i % scales.len()])
}

/// A table visible to query threads: index, the epoch its registration
/// completed at, and the oracle `SUM(amount)` in receiver units.
#[derive(Clone, Copy)]
struct Registered {
    index: usize,
    epoch: u64,
    expected_sum: f64,
}

/// Oracle sum for `fin<index>` read back through the naive (unmediated)
/// path, converted with the fixture's context parameters.
fn oracle_sum(sys: &CoinSystem, index: usize) -> f64 {
    let (naive, _) = sys
        .query_naive(&format!("SELECT f.amount FROM fin{index} f"))
        .unwrap();
    let (cur, scale) = context_of(index);
    naive
        .rows
        .iter()
        .map(|r| match r[0] {
            coin_rel::Value::Int(i) => to_usd(i, cur, scale),
            _ => unreachable!(),
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        // CI determinism: never read or write regression files.
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    #[test]
    fn concurrent_queries_and_mutations_never_yield_stale_epochs(
        seed in 1u64..1000,
        mutations in 2usize..5,
        queries_per_client in 4usize..10,
    ) {
        let sys = synthetic_system(1, 4, seed);
        let first = Registered {
            index: 0,
            epoch: sys.epoch(),
            expected_sum: oracle_sum(&sys, 0),
        };
        let shared = Arc::new(RwLock::new(sys));
        let server = start_server_shared(
            Arc::clone(&shared),
            "127.0.0.1:0",
            ServerConfig { workers: 4, ..ServerConfig::default() },
        )
        .unwrap();
        let registry = Arc::new(Mutex::new(vec![first]));

        // Mutator: administer new sources while queries are in flight.
        let mutator = {
            let shared = Arc::clone(&shared);
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let mut rng = Rng::new(seed ^ 0x6d75_7461);
                for i in 1..=mutations {
                    let entry = {
                        let mut guard = shared.write().unwrap();
                        add_synthetic_source(&mut guard, i, 4, &mut rng);
                        Registered {
                            index: i,
                            epoch: guard.epoch(),
                            expected_sum: oracle_sum(&guard, i),
                        }
                    };
                    registry.lock().unwrap().push(entry);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            })
        };

        // Clients: query whatever tables are registered so far.
        let clients: Vec<_> = (0..2u64)
            .map(|c| {
                let registry = Arc::clone(&registry);
                let shared = Arc::clone(&shared);
                let addr = server.addr;
                std::thread::spawn(move || -> Result<(), TestCaseError> {
                    let conn = Connection::open(addr, "c_recv");
                    let mut rng = Rng::new(seed.wrapping_mul(31).wrapping_add(c + 1));
                    for _ in 0..queries_per_client {
                        let target = {
                            let reg = registry.lock().unwrap();
                            reg[rng.below(reg.len() as u64) as usize]
                        };
                        let rs = conn
                            .statement()
                            .execute(&format!("SELECT SUM(f.amount) FROM fin{} f", target.index))
                            .unwrap();
                        let plan_epoch =
                            rs.plan_epoch.expect("mediated responses report their epoch");
                        prop_assert!(
                            plan_epoch >= target.epoch,
                            "fin{} answered by a plan from epoch {} but the table \
                             finished registering at epoch {}",
                            target.index, plan_epoch, target.epoch
                        );
                        let now = shared.read().unwrap().epoch();
                        prop_assert!(
                            plan_epoch <= now,
                            "plan epoch {plan_epoch} is from the future (current {now})"
                        );
                        let got = rs.rows[0][0].as_f64().unwrap();
                        let want = target.expected_sum;
                        prop_assert!(
                            (got - want).abs() <= 1e-6 * want.abs().max(1.0),
                            "fin{}: got {got}, oracle {want} (epoch {plan_epoch})",
                            target.index
                        );
                    }
                    Ok(())
                })
            })
            .collect();

        mutator.join().unwrap();
        for c in clients {
            c.join().unwrap()?;
        }
        server.stop();
    }
}

/// Dependency-tracked invalidation end to end through the wire protocol:
/// administering parts no cached plan reads (a fresh context, a fresh
/// source) leaves the server's plan cache hot, while mutating an actual
/// dependency forces exactly the dependent plans to recompile. `/stats`
/// reports the per-part versions alongside the scalar epoch.
#[test]
fn unrelated_administration_keeps_server_cache_hot() {
    use coin_core::{ContextTheory, Conversion, ModifierSpec};

    let sys = synthetic_system(2, 4, 7);
    let shared = Arc::new(RwLock::new(sys));
    let server = start_server_shared(
        Arc::clone(&shared),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let conn = Connection::open(server.addr, "c_recv");
    let sql = "SELECT SUM(f.amount) FROM fin0 f";

    // Warm the cache: miss, then hit.
    conn.statement().execute(sql).unwrap();
    conn.statement().execute(sql).unwrap();
    let before = conn.server_stats().unwrap();
    assert!(before.cache_hits >= 1);
    assert_eq!(before.cache_entries, 1);
    assert!(
        before.tracked_model_parts > 0,
        "/stats must expose the per-part model versions"
    );

    // Unrelated admin: a fresh context through the shared handle. The
    // epoch advances but the cached fin0 plan never read this part.
    {
        let mut guard = shared.write().unwrap();
        guard
            .add_context(ContextTheory::new("c_fresh").set(
                "companyFinancials",
                "currency",
                ModifierSpec::constant("EUR"),
            ))
            .unwrap();
    }
    let rs = conn.statement().execute(sql).unwrap();
    assert!(
        rs.cache.as_deref() == Some("hit"),
        "plan must survive: {rs:?}"
    );
    let after = conn.server_stats().unwrap();
    assert_eq!(after.epoch, before.epoch + 1);
    assert_eq!(
        after.cache_invalidations, before.cache_invalidations,
        "unrelated administration must not invalidate"
    );
    assert!(after.tracked_model_parts > before.tracked_model_parts);

    // Dependent admin: flip the currency conversion's lookup orientation
    // — every financial plan read it, so the next query recompiles.
    {
        let mut guard = shared.write().unwrap();
        guard
            .replace_conversion(
                "currency",
                Conversion::Lookup {
                    relation: "rates".into(),
                    from_col: "toCur".into(),
                    to_col: "fromCur".into(),
                    factor_col: "rate".into(),
                },
            )
            .unwrap();
    }
    let rs = conn.statement().execute(sql).unwrap();
    assert!(
        rs.cache.as_deref() == Some("miss"),
        "dependent plan must recompile: {rs:?}"
    );
    let end = conn.server_stats().unwrap();
    assert_eq!(end.epoch, after.epoch + 1);
    assert!(end.cache_invalidations > after.cache_invalidations);

    server.stop();
}
