//! Wire-protocol tests: JSON codec round-trips, golden encodings for
//! `value_to_json`/`table_to_json`, and a raw client↔server loopback over
//! [`ServerHandle`] exercising the HTTP layer beneath the ODBC-style API.

use std::sync::Arc;

use coin_rel::{ColumnType, Schema, Table, Value};
use coin_server::protocol::json_to_value;
use coin_server::{http, parse_json, table_to_json, value_to_json, HttpResponse, Json};

// ---------------------------------------------------------------------------
// JSON parse/print round-trips
// ---------------------------------------------------------------------------

#[test]
fn json_documents_roundtrip_through_text() {
    let docs = [
        Json::Null,
        Json::Bool(false),
        Json::Num(-300.0),
        Json::Num(2.5),
        Json::str(""),
        Json::str("quote \" backslash \\ newline \n tab \t unicode 通貨"),
        Json::Arr(vec![]),
        Json::Obj(vec![]),
        Json::obj([
            ("sql", Json::str("SELECT r1.cname FROM r1 WHERE x > 3")),
            (
                "nested",
                Json::Arr(vec![Json::Null, Json::obj([("k", Json::Num(1.0))])]),
            ),
            ("mode", Json::str("mediated")),
        ]),
    ];
    for doc in docs {
        let printed = doc.to_string();
        let reparsed = parse_json(&printed).unwrap();
        assert_eq!(reparsed, doc, "text form: {printed}");
        // Printing is a fixed point: parse(print(x)) prints identically.
        assert_eq!(reparsed.to_string(), printed);
    }
}

#[test]
fn json_control_characters_escape_and_return() {
    let original = Json::str("bell \u{7} feed \u{c} backspace \u{8}");
    let printed = original.to_string();
    assert!(printed.contains("\\u0007"), "{printed}");
    assert_eq!(parse_json(&printed).unwrap(), original);
}

#[test]
fn json_rejects_malformed_documents() {
    for bad in [
        "",
        "{\"a\":}",
        "[1 2]",
        "tru",
        "\"\\q\"",
        "1.2.3",
        "{\"a\":1,}",
    ] {
        assert!(parse_json(bad).is_err(), "accepted malformed input {bad:?}");
    }
}

// ---------------------------------------------------------------------------
// Protocol golden cases
// ---------------------------------------------------------------------------

#[test]
fn value_encodings_are_stable() {
    // Golden wire forms: changing these breaks deployed clients.
    let cases: [(&Value, &str); 5] = [
        (&Value::Null, "null"),
        (&Value::Bool(true), r#"["b",true]"#),
        (&Value::Int(9_600_000), r#"["i","9600000"]"#),
        (&Value::Float(0.0096), r#"["f",0.0096]"#),
        (&Value::str("NTT"), r#"["s","NTT"]"#),
    ];
    for (value, golden) in cases {
        assert_eq!(value_to_json(value).to_string(), golden);
        assert_eq!(
            json_to_value(&parse_json(golden).unwrap()).as_ref(),
            Some(value)
        );
    }
}

#[test]
fn int_encoding_survives_f64_precision_loss() {
    // 2^53 + 1 is not representable as an f64; the string-tagged encoding
    // must carry it anyway.
    let v = Value::Int((1 << 53) + 1);
    let wire = value_to_json(&v).to_string();
    let back = json_to_value(&parse_json(&wire).unwrap()).unwrap();
    assert_eq!(back, v);
}

#[test]
fn bogus_wire_values_decode_to_none() {
    for bad in [
        r#"["x",1]"#,
        r#"["i","not a number"]"#,
        r#"["b"]"#,
        "3",
        r#""s""#,
    ] {
        assert_eq!(
            json_to_value(&parse_json(bad).unwrap()),
            None,
            "accepted {bad}"
        );
    }
}

#[test]
fn table_encoding_golden() {
    let t = Table::from_rows(
        "answer",
        Schema::of(&[("cname", ColumnType::Str), ("revenue", ColumnType::Float)]),
        vec![vec![Value::str("NTT"), Value::Float(9_600_000.0)]],
    );
    assert_eq!(
        table_to_json(&t).to_string(),
        r#"{"columns":[{"name":"cname","type":"STR"},{"name":"revenue","type":"FLOAT"}],"rows":[[["s","NTT"],["f",9600000]]]}"#
    );
}

#[test]
fn table_with_nulls_and_every_type_roundtrips() {
    let t = Table::from_rows(
        "mixed",
        Schema::of(&[
            ("i", ColumnType::Int),
            ("f", ColumnType::Float),
            ("s", ColumnType::Str),
            ("b", ColumnType::Bool),
        ]),
        vec![
            vec![
                Value::Int(-1),
                Value::Float(2.5),
                Value::str("x"),
                Value::Bool(false),
            ],
            vec![Value::Null, Value::Null, Value::Null, Value::Null],
        ],
    );
    let doc = parse_json(&table_to_json(&t).to_string()).unwrap();
    let rows = doc.get("rows").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 2);
    let decoded: Vec<Vec<Value>> = rows
        .iter()
        .map(|r| {
            r.as_array()
                .unwrap()
                .iter()
                .map(|v| json_to_value(v).unwrap())
                .collect()
        })
        .collect();
    assert_eq!(decoded, t.rows);
}

// ---------------------------------------------------------------------------
// Client ↔ server loopback over ServerHandle
// ---------------------------------------------------------------------------

#[test]
fn raw_json_loopback_over_server_handle() {
    // A handler that decodes a wire table, transforms it, and sends it
    // back — both directions of the protocol codec over a real socket.
    let handler: http::Handler = Arc::new(|req: &http::HttpRequest| {
        let doc = match parse_json(&req.body_str()) {
            Ok(d) => d,
            Err(e) => return HttpResponse::error(400, &e.to_string()),
        };
        let rows = doc.get("rows").and_then(Json::as_array).unwrap_or(&[]);
        let doubled: Vec<Json> = rows
            .iter()
            .map(|row| {
                Json::Arr(
                    row.as_array()
                        .unwrap_or(&[])
                        .iter()
                        .map(|v| match json_to_value(v) {
                            Some(Value::Int(i)) => value_to_json(&Value::Int(i * 2)),
                            Some(other) => value_to_json(&other),
                            None => Json::Null,
                        })
                        .collect(),
                )
            })
            .collect();
        HttpResponse::json(&Json::obj([("rows", Json::Arr(doubled))]))
    });
    let server = http::serve("127.0.0.1:0", 2, handler).unwrap();

    let t = Table::from_rows(
        "t",
        Schema::of(&[("x", ColumnType::Int)]),
        vec![vec![Value::Int(21)], vec![Value::Int(-4)]],
    );
    let reply = http::post(
        &server.addr,
        "/double",
        "application/json",
        table_to_json(&t).to_string().as_bytes(),
    )
    .unwrap();
    let doc = parse_json(&String::from_utf8_lossy(&reply)).unwrap();
    let rows = doc.get("rows").unwrap().as_array().unwrap();
    let values: Vec<Value> = rows
        .iter()
        .map(|r| json_to_value(&r.as_array().unwrap()[0]).unwrap())
        .collect();
    assert_eq!(values, vec![Value::Int(42), Value::Int(-8)]);
    server.stop();
}
