//! Fault injection across shards: peers that vanish mid-handshake,
//! mid-headers, or mid-chunked-stream. The contract: the owning shard
//! notices, cancels any in-flight plan, and returns its
//! `open_connections` slice to zero — and a dying connection on one
//! shard never stalls traffic on another.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use coin_core::fixtures::figure2_system;
use coin_core::CoinSystem;
use coin_rel::{Catalog, ColumnType, Schema, Table, Value};
use coin_server::http::HttpClient;
use coin_server::{start_server_with, ServerConfig, ServerHandle};
use coin_wrapper::RelationalSource;

#[path = "support/transport.rs"]
mod support;

use support::{reactor_matrix, wait_until, TransportCase, EPHEMERAL};

const BULK_SQL: &str = "SELECT big.id, big.payload FROM big";

/// Figure 2 plus a synthetic table large enough that a streamed result
/// can never complete into socket buffers before the peer disconnects.
fn bulk_system(rows: usize) -> CoinSystem {
    let mut sys = figure2_system();
    let payload = Value::str(&"x".repeat(48));
    let table = Table::from_rows(
        "big",
        Schema::of(&[("id", ColumnType::Int), ("payload", ColumnType::Str)]),
        (0..rows)
            .map(|i| vec![Value::Int(i as i64), payload.clone()])
            .collect(),
    );
    sys.add_source(RelationalSource::new(
        "bulk",
        Catalog::new().with_table(table),
    ))
    .unwrap();
    sys
}

fn start(case: TransportCase, config: ServerConfig) -> ServerHandle {
    start_server_with(Arc::new(figure2_system()), EPHEMERAL, case.apply(config)).unwrap()
}

/// Open a streaming `/query` against `addr`, read `floor` bytes to prove
/// the chunked body is in flight, and hand the socket back to the caller
/// (who will drop it to inject the fault).
fn streaming_conn(addr: std::net::SocketAddr, floor: usize) -> TcpStream {
    let body = format!("{{\"sql\":\"{BULK_SQL}\",\"mode\":\"naive\"}}");
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(
        format!(
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    raw.flush().unwrap();
    let mut got = 0usize;
    let mut buf = [0u8; 8192];
    while got < floor {
        let n = raw.read(&mut buf).unwrap();
        assert!(n > 0, "server closed the stream before the disconnect");
        got += n;
    }
    raw
}

#[test]
fn disconnect_mid_handshake_leaves_no_residue_on_any_shard() {
    // Peers that connect and vanish before sending a single byte: two
    // per shard, admitted (the gauge counts them), then gone. No request
    // ever existed, so no counter but the gauge may move.
    for case in reactor_matrix() {
        let server = start(
            case,
            ServerConfig {
                workers: 2,
                idle_timeout: Duration::from_secs(30),
                ..ServerConfig::default()
            },
        );
        let fleet_size = 2 * case.shards;
        let fleet: Vec<TcpStream> = (0..fleet_size)
            .map(|_| TcpStream::connect(server.addr).unwrap())
            .collect();
        wait_until("the silent fleet is admitted", || {
            server.metrics().open_connections == fleet_size as u64
        });
        let m = server.metrics();
        assert!(
            m.open_per_shard.iter().all(|&open| open == 2),
            "[{}] round-robin put two silent conns on each shard: {m:?}",
            case.name
        );

        drop(fleet); // every peer FINs mid-handshake
        wait_until("every shard to reap its dead peers", || {
            let m = server.metrics();
            m.open_connections == 0 && m.open_per_shard.iter().all(|&open| open == 0)
        });
        let m = server.metrics();
        assert_eq!(m.connections_accepted, fleet_size as u64);
        assert_eq!(m.requests, 0, "[{}] no request existed: {m:?}", case.name);
        assert_eq!(m.malformed_requests, 0, "[{}] {m:?}", case.name);
        server.stop();
    }
}

#[test]
fn disconnect_mid_headers_is_a_silent_close_not_an_error() {
    // A peer that dies halfway through its request line is neither a
    // malformed request (it might have finished) nor a timeout (it
    // didn't stall — it vanished). One per shard.
    for case in reactor_matrix() {
        let server = start(
            case,
            ServerConfig {
                workers: 2,
                read_timeout: Duration::from_secs(60), // never the trigger here
                ..ServerConfig::default()
            },
        );
        let fleet: Vec<TcpStream> = (0..case.shards)
            .map(|_| {
                let mut s = TcpStream::connect(server.addr).unwrap();
                s.write_all(b"GET /stats HT").unwrap(); // half a request line
                s.flush().unwrap();
                s
            })
            .collect();
        wait_until("the half-spoken fleet is admitted", || {
            server.metrics().open_connections == case.shards as u64
        });

        drop(fleet); // FIN with a partial request buffered
        wait_until("every shard to close its half-spoken peer", || {
            let m = server.metrics();
            m.open_connections == 0 && m.open_per_shard.iter().all(|&open| open == 0)
        });
        let m = server.metrics();
        assert_eq!(m.requests, 0, "[{}] {m:?}", case.name);
        assert_eq!(m.malformed_requests, 0, "[{}] not a 400: {m:?}", case.name);
        assert_eq!(m.request_timeouts, 0, "[{}] not a 408: {m:?}", case.name);
        server.stop();
    }
}

#[test]
fn disconnect_mid_stream_on_every_shard_cancels_every_plan() {
    // One in-flight chunked stream per shard, all four peers vanish:
    // each shard must cancel its plan (worker unpinned) and zero its
    // gauge — and the server keeps serving afterwards.
    let case = support::EPOLL4; // resolves to poll off-Linux: same contract
    let server = start_server_with(
        Arc::new(bulk_system(200_000)),
        EPHEMERAL,
        case.apply(ServerConfig {
            workers: 4, // one potential pin per shard
            ..ServerConfig::default()
        }),
    )
    .unwrap();

    // Connections round-robin in admission order: streams land on shards
    // 0, 1, 2, 3.
    let streams: Vec<TcpStream> = (0..4)
        .map(|_| streaming_conn(server.addr, 64 * 1024))
        .collect();
    let m = server.metrics();
    assert_eq!(m.streams, 4, "all four streams in flight: {m:?}");
    assert_eq!(m.open_per_shard, vec![1, 1, 1, 1], "{m:?}");

    drop(streams);
    wait_until("every shard to cancel its stream", || {
        server.metrics().streams_aborted == 4
    });
    wait_until("every shard's gauge to fall", || {
        let m = server.metrics();
        m.open_connections == 0 && m.open_per_shard.iter().all(|&open| open == 0)
    });

    // All four workers are free again: a fresh request completes.
    let stats = HttpClient::new(server.addr)
        .request("GET", "/stats", None, &[])
        .unwrap();
    assert!(String::from_utf8_lossy(&stats).contains("cache_hits"));
    server.stop();
}

#[test]
fn a_dying_stream_on_one_shard_never_stalls_another() {
    // Shard 0 hosts a stream whose peer stops reading (output backed up,
    // worker parked on the stream channel); shard 1 must keep serving at
    // full speed, unaffected, and the eventual disconnect is shard 0's
    // problem alone.
    let case = TransportCase {
        shards: 2,
        ..support::EPOLL4
    };
    let server = start_server_with(
        Arc::new(bulk_system(200_000)),
        EPHEMERAL,
        case.apply(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        }),
    )
    .unwrap();

    // First connection → shard 0: a stream we read just far enough to
    // start, then stop draining.
    let stalled = streaming_conn(server.addr, 64 * 1024);
    // Second connection → shard 1: a fast keep-alive client.
    let mut fast = HttpClient::new(server.addr);
    let t0 = Instant::now();
    for i in 0..20 {
        let resp = fast.send("GET", "/stats", None, &[]).unwrap();
        assert_eq!(resp.status, 200, "fast request {i}");
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shard 1 was stalled by shard 0's dying stream: 20 requests took {:?}",
        t0.elapsed()
    );
    assert_eq!(fast.connects(), 1, "the fast client never lost its socket");

    drop(stalled);
    wait_until("shard 0 to cancel the abandoned stream", || {
        server.metrics().streams_aborted == 1
    });
    let m = server.metrics();
    assert_eq!(m.streams, 1, "{m:?}");
    server.stop();
}
