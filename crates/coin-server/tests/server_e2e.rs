//! EX-ARCH / EX-ACC: the full Figure 1 stack over real sockets — client →
//! HTTP → mediation services → planner → wrappers → sources.

use std::sync::Arc;

use coin_core::fixtures::figure2_system;
use coin_rel::Value;
use coin_server::{http, start_server, Connection};

const Q1: &str = "SELECT r1.cname, r1.revenue FROM r1, r2 \
                  WHERE r1.cname = r2.cname AND r1.revenue > r2.expenses";

fn start() -> (coin_server::ServerHandle, Connection) {
    let system = Arc::new(figure2_system());
    let server = start_server(system, "127.0.0.1:0").unwrap();
    let conn = Connection::open(server.addr, "c_recv");
    (server, conn)
}

#[test]
fn dictionary_over_http() {
    let (server, conn) = start();
    let tables = conn.dictionary().unwrap();
    let names: Vec<&str> = tables.iter().map(|t| t.table.as_str()).collect();
    assert!(names.contains(&"r1"));
    assert!(names.contains(&"r2"));
    assert!(names.contains(&"r3"));
    let r1 = tables.iter().find(|t| t.table == "r1").unwrap();
    assert_eq!(r1.columns.len(), 3);
    server.stop();
}

#[test]
fn mediated_query_over_odbc_style_api() {
    let (server, conn) = start();
    let rs = conn.statement().execute(Q1).unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0][0], Value::str("NTT"));
    assert_eq!(rs.rows[0][1], Value::Float(9_600_000.0));
    let mediated = rs.mediated_sql.expect("mediated SQL travels back");
    assert!(mediated.contains("UNION"));
    server.stop();
}

#[test]
fn naive_query_returns_empty() {
    let (server, conn) = start();
    let rs = conn.naive_statement().execute(Q1).unwrap();
    assert!(rs.is_empty());
    server.stop();
}

#[test]
fn explain_mode() {
    let (server, conn) = start();
    let (mediated_sql, explanation) = conn.explain(Q1).unwrap();
    assert!(mediated_sql.contains("UNION"));
    assert!(explanation.contains("case 1"));
    server.stop();
}

#[test]
fn server_reports_sql_errors() {
    let (server, conn) = start();
    let err = conn.statement().execute("SELECT FROM nothing").unwrap_err();
    assert!(matches!(err, coin_server::ClientError::Server(_)), "{err}");
    server.stop();
}

#[test]
fn qbe_form_over_http() {
    let (server, _conn) = start();
    let body = http::get(&server.addr, "/qbe").unwrap();
    let html = String::from_utf8_lossy(&body);
    assert!(html.contains("Query-By-Example"));
    assert!(html.contains("r1"));
    // Submit the form.
    let resp = http::post(
        &server.addr,
        "/qbe",
        "application/x-www-form-urlencoded",
        b"table=r1&context=c_recv&show_cname=on&show_revenue=on",
    )
    .unwrap();
    let html = String::from_utf8_lossy(&resp);
    assert!(html.contains("IBM"), "{html}");
    assert!(html.contains("9600000"), "{html}");
    server.stop();
}

#[test]
fn accessibility_three_paths_agree() {
    // EX-ACC: the same query through (a) the in-process API, (b) the
    // ODBC-style HTTP API, and (c) QBE yields the same mediated SQL and
    // answer.
    let system = Arc::new(figure2_system());
    let in_process = system
        .query("SELECT r1.cname, r1.revenue FROM r1", "c_recv")
        .unwrap();

    let server = start_server(Arc::clone(&system), "127.0.0.1:0").unwrap();
    let conn = Connection::open(server.addr, "c_recv");
    let over_http = conn
        .statement()
        .execute("SELECT r1.cname, r1.revenue FROM r1")
        .unwrap();

    assert_eq!(
        over_http.mediated_sql.as_deref(),
        Some(in_process.mediated.query.to_string().as_str())
    );
    assert_eq!(over_http.rows.len(), in_process.table.rows.len());

    let qbe_resp = http::post(
        &server.addr,
        "/qbe",
        "application/x-www-form-urlencoded",
        b"table=r1&context=c_recv&show_cname=on&show_revenue=on",
    )
    .unwrap();
    let qbe_html = String::from_utf8_lossy(&qbe_resp);
    for row in &in_process.table.rows {
        let name = row[0].render();
        assert!(qbe_html.contains(&name), "QBE answer missing {name}");
    }
    server.stop();
}

#[test]
fn concurrent_clients() {
    let (server, _) = start();
    let addr = server.addr;
    let threads: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let conn = Connection::open(addr, "c_recv");
                let rs = conn.statement().execute(Q1).unwrap();
                assert_eq!(rs.len(), 1);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    server.stop();
}

#[test]
fn query_cache_status_travels_over_http() {
    let (server, conn) = start();
    let cold = conn.statement().execute(Q1).unwrap();
    assert_eq!(cold.cache.as_deref(), Some("miss"));
    let warm = conn.statement().execute(Q1).unwrap();
    assert_eq!(warm.cache.as_deref(), Some("hit"));
    assert_eq!(warm.rows, cold.rows, "cache must not change answers");
    // Naive mode bypasses mediation entirely — no cache field.
    let naive = conn.naive_statement().execute(Q1).unwrap();
    assert_eq!(naive.cache, None);
    server.stop();
}

#[test]
fn stats_endpoint_reports_cumulative_counters() {
    let (server, conn) = start();
    let before = conn.server_stats().unwrap();
    assert_eq!(before.cache_hits, 0);
    assert_eq!(before.cache_misses, 0);
    assert!(before.cache_capacity > 0);
    assert!(before.epoch > 0, "figure-2 administration bumped the epoch");

    conn.statement().execute(Q1).unwrap(); // miss
    conn.statement().execute(Q1).unwrap(); // hit
    conn.statement().execute(Q1).unwrap(); // hit

    let after = conn.server_stats().unwrap();
    assert_eq!(after.cache_misses, 1);
    assert_eq!(after.cache_hits, 2);
    assert_eq!(after.cache_entries, 1);
    assert_eq!(
        after.epoch, before.epoch,
        "queries must not mutate the model"
    );
    server.stop();
}
