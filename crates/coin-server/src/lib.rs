//! # coin-server — the receiver-side access layer
//!
//! Figure 1's client/server slice: the mediation services exposed over
//! HTTP, with two ready-to-use interfaces exactly as in the prototype —
//! an ODBC-family client API and an HTML Query-By-Example form (paper §2).
//!
//! * [`json`] — self-contained JSON codec for the wire protocol;
//! * [`http`] — HTTP/1.0 server (worker pool) and blocking client;
//! * [`protocol`] — the mediation endpoints (`/dictionary`, `/query`,
//!   `/qbe`) over a shared [`coin_core::CoinSystem`];
//! * [`client`] — [`client::Connection`] / [`client::Statement`] /
//!   [`client::ResultSet`], the ODBC-style API;
//! * [`qbe`] — QBE form rendering and submission handling.

pub mod client;
pub mod http;
pub mod json;
pub mod protocol;
pub mod qbe;

pub use client::{ClientError, Connection, ResultSet, ServerStats, Statement, TableInfo};
pub use http::{HttpError, HttpRequest, HttpResponse, ServerHandle};
pub use json::{parse as parse_json, Json, JsonError};
pub use protocol::{start_server, table_to_json, value_to_json};
