//! # coin-server — the receiver-side access layer
//!
//! Figure 1's client/server slice: the mediation services exposed over
//! HTTP, with two ready-to-use interfaces exactly as in the prototype —
//! an ODBC-family client API and an HTML Query-By-Example form (paper §2).
//!
//! * [`json`] — self-contained JSON codec for the wire protocol;
//! * [`http`] — HTTP/1.1 keep-alive server (event-driven reactor or
//!   thread-per-connection transport over a bounded worker pool, with
//!   load shedding) and blocking clients (one-shot helpers plus the
//!   persistent [`http::HttpClient`]);
//! * [`protocol`] — the mediation endpoints (`/dictionary`, `/query`,
//!   `/stats`, `/qbe`) over a shared [`coin_core::CoinSystem`] (or a
//!   [`protocol::SharedSystem`] when administration interleaves with
//!   traffic);
//! * [`client`] — [`client::Connection`] / [`client::Statement`] /
//!   [`client::ResultSet`], the ODBC-style API (connection-reusing);
//! * [`qbe`] — QBE form rendering and submission handling.

pub mod client;
#[cfg(unix)]
mod conn;
pub mod http;
pub mod json;
#[cfg(unix)]
mod poller;
pub mod protocol;
pub mod qbe;
#[cfg(unix)]
mod reactor;

pub use client::{ClientError, Connection, ResultSet, ServerStats, Statement, TableInfo};
pub use http::{
    HttpClient, HttpError, HttpRequest, HttpResponse, ReactorBackend, ServerConfig, ServerHandle,
    ServerMetricsSnapshot, StreamBody, Transport,
};
pub use json::{parse as parse_json, Json, JsonBuf, JsonError};
pub use protocol::{
    start_server, start_server_shared, start_server_with, table_to_json, value_to_json,
    SharedSystem,
};
