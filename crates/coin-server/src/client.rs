//! The ODBC-family client API.
//!
//! "On the receiver's side we have implemented an Application Programming
//! Interface (API) of the family of the Object DataBase Connectivity (ODBC)
//! protocol … we have developed … an ODBC driver which gives access to the
//! mediation services to any … ODBC compliant applications" (paper §2).
//!
//! [`Connection`] plays the role of the ODBC data source (bound to a
//! receiver context), [`Statement`] prepares and executes SQL, and
//! [`ResultSet`] exposes columns/rows plus the mediation provenance.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex, PoisonError};

use coin_rel::{Column, ColumnType, Schema, Table, Value};

use crate::http::{HttpClient, HttpError};
use crate::json::{parse, Json, JsonError};
use crate::protocol::json_to_value;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    Http(HttpError),
    Json(JsonError),
    Server(String),
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Http(e) => write!(f, "{e}"),
            ClientError::Json(e) => write!(f, "{e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        ClientError::Http(e)
    }
}
impl From<JsonError> for ClientError {
    fn from(e: JsonError) -> Self {
        ClientError::Json(e)
    }
}

/// Table metadata from the dictionary endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct TableInfo {
    pub source: String,
    pub table: String,
    pub columns: Vec<(String, String)>,
}

/// A connection to a mediation server, bound to a receiver context.
///
/// The connection holds one pooled keep-alive socket ([`HttpClient`]):
/// sequential requests reuse it instead of opening a TCP connection per
/// call, and a socket the server idle-timed-out is transparently
/// re-opened. [`HttpClient`]'s retry policy replays a request only on
/// disconnect-before-response, never on a timeout, and only for
/// idempotent methods — `POST /query` is read-only despite its method,
/// so this connection opts it in explicitly
/// ([`HttpClient::send_assuming_idempotent`]). Clones share the pooled
/// socket (requests serialize over it, as in ODBC connections).
///
/// ```
/// use coin_core::fixtures::figure2_system;
/// use coin_server::{start_server, Connection};
/// use std::sync::Arc;
///
/// let server = start_server(Arc::new(figure2_system()), "127.0.0.1:0").unwrap();
/// let conn = Connection::open(server.addr, "c_recv");
///
/// let rs = conn
///     .statement()
///     .execute(
///         "SELECT r1.cname, r1.revenue FROM r1, r2 \
///          WHERE r1.cname = r2.cname AND r1.revenue > r2.expenses",
///     )
///     .unwrap();
/// assert_eq!(rs.len(), 1); // <'NTT', 9_600_000> in the receiver context
///
/// let stats = conn.server_stats().unwrap();
/// assert_eq!(stats.cache_misses, 1); // first compile was a cold miss
/// server.stop();
/// ```
#[derive(Debug, Clone)]
pub struct Connection {
    addr: SocketAddr,
    context: String,
    http: Arc<Mutex<HttpClient>>,
}

impl Connection {
    /// Open a connection (lazy: the socket is opened on first use).
    pub fn open(addr: SocketAddr, context: &str) -> Connection {
        Connection {
            addr,
            context: context.to_owned(),
            http: Arc::new(Mutex::new(HttpClient::new(addr))),
        }
    }

    /// The receiver context this connection is bound to.
    pub fn context(&self) -> &str {
        &self.context
    }

    /// The server address this connection targets.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// TCP connections opened so far (1 for an all-keep-alive exchange).
    pub fn transport_connects(&self) -> u64 {
        self.http().connects()
    }

    fn http(&self) -> std::sync::MutexGuard<'_, HttpClient> {
        self.http.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn get(&self, path: &str) -> Result<Vec<u8>, HttpError> {
        self.http().request("GET", path, None, &[])
    }

    fn post_json(&self, path: &str, payload: &Json) -> Result<Vec<u8>, HttpError> {
        // Every endpoint this client POSTs to is read-only (queries,
        // explain), so opt in to the stale-socket replay the transport
        // otherwise reserves for GET/HEAD.
        self.http()
            .send_assuming_idempotent(
                "POST",
                path,
                Some("application/json"),
                payload.to_string().as_bytes(),
            )?
            .into_body()
    }

    /// Fetch the schema dictionary.
    pub fn dictionary(&self) -> Result<Vec<TableInfo>, ClientError> {
        let body = self.get("/dictionary")?;
        let doc = parse(&String::from_utf8_lossy(&body))?;
        let tables = doc
            .get("tables")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing tables".into()))?;
        tables
            .iter()
            .map(|t| {
                let source = t
                    .get("source")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ClientError::Protocol("missing source".into()))?
                    .to_owned();
                let table = t
                    .get("table")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ClientError::Protocol("missing table".into()))?
                    .to_owned();
                let columns = t
                    .get("columns")
                    .and_then(Json::as_array)
                    .ok_or_else(|| ClientError::Protocol("missing columns".into()))?
                    .iter()
                    .map(|c| {
                        Ok((
                            c.get("name")
                                .and_then(Json::as_str)
                                .ok_or_else(|| ClientError::Protocol("missing column name".into()))?
                                .to_owned(),
                            c.get("type")
                                .and_then(Json::as_str)
                                .unwrap_or("ANY")
                                .to_owned(),
                        ))
                    })
                    .collect::<Result<_, ClientError>>()?;
                Ok(TableInfo {
                    source,
                    table,
                    columns,
                })
            })
            .collect()
    }

    /// Create a statement.
    pub fn statement(&self) -> Statement<'_> {
        Statement {
            conn: self,
            mediated: true,
            max_rows: 0,
            max_bytes: 0,
        }
    }

    /// A statement that bypasses mediation (the naive baseline).
    pub fn naive_statement(&self) -> Statement<'_> {
        Statement {
            conn: self,
            mediated: false,
            max_rows: 0,
            max_bytes: 0,
        }
    }

    /// Fetch the server's cumulative mediation statistics (`GET /stats`).
    pub fn server_stats(&self) -> Result<ServerStats, ClientError> {
        let body = self.get("/stats")?;
        let doc = parse(&String::from_utf8_lossy(&body))?;
        let num = |k: &str| doc.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let tracked_model_parts = match doc.get("model_versions") {
            Some(Json::Obj(parts)) => parts.len() as u64,
            _ => 0,
        };
        Ok(ServerStats {
            epoch: num("epoch"),
            cache_hits: num("cache_hits"),
            cache_misses: num("cache_misses"),
            cache_compiles: num("cache_compiles"),
            cache_invalidations: num("cache_invalidations"),
            cache_evictions: num("cache_evictions"),
            cache_entries: num("cache_entries"),
            cache_capacity: num("cache_capacity"),
            axioms: num("axioms"),
            tracked_model_parts,
        })
    }

    /// Ask the mediator for the rewriting only.
    pub fn explain(&self, sql: &str) -> Result<(String, String), ClientError> {
        let payload = Json::obj([
            ("sql", Json::str(sql)),
            ("context", Json::str(&self.context)),
            ("mode", Json::str("explain")),
        ]);
        let body = self.post_json("/query", &payload)?;
        let doc = parse(&String::from_utf8_lossy(&body))?;
        if let Some(err) = doc.get("error").and_then(Json::as_str) {
            return Err(ClientError::Server(err.to_owned()));
        }
        Ok((
            doc.get("mediated_sql")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            doc.get("explanation")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
        ))
    }
}

/// A prepared statement.
#[derive(Debug)]
pub struct Statement<'c> {
    conn: &'c Connection,
    mediated: bool,
    max_rows: u64,
    max_bytes: u64,
}

impl Statement<'_> {
    /// Cap the result at `n` rows (0 = unlimited). A capped result that
    /// actually dropped rows comes back with [`ResultSet::truncated`]
    /// set.
    pub fn max_rows(mut self, n: u64) -> Self {
        self.max_rows = n;
        self
    }

    /// Cap the response body at roughly `n` bytes (0 = unlimited; the
    /// server stops emitting rows at the first row past the cap).
    pub fn max_bytes(mut self, n: u64) -> Self {
        self.max_bytes = n;
        self
    }

    /// Execute SQL and fetch the full result set.
    pub fn execute(&self, sql: &str) -> Result<ResultSet, ClientError> {
        let mode = if self.mediated { "mediated" } else { "naive" };
        let mut fields = vec![
            ("sql".to_owned(), Json::str(sql)),
            ("context".to_owned(), Json::str(&self.conn.context)),
            ("mode".to_owned(), Json::str(mode)),
        ];
        if self.max_rows > 0 {
            fields.push(("max_rows".to_owned(), Json::Num(self.max_rows as f64)));
        }
        if self.max_bytes > 0 {
            fields.push(("max_bytes".to_owned(), Json::Num(self.max_bytes as f64)));
        }
        let payload = Json::Obj(fields);
        let body = self.conn.post_json("/query", &payload)?;
        let doc = parse(&String::from_utf8_lossy(&body))?;
        if let Some(err) = doc.get("error").and_then(Json::as_str) {
            return Err(ClientError::Server(err.to_owned()));
        }
        decode_result(&doc)
    }
}

fn decode_result(doc: &Json) -> Result<ResultSet, ClientError> {
    let columns = doc
        .get("columns")
        .and_then(Json::as_array)
        .ok_or_else(|| ClientError::Protocol("missing columns".into()))?
        .iter()
        .map(|c| {
            let name = c
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| ClientError::Protocol("missing column name".into()))?;
            let ty = match c.get("type").and_then(Json::as_str).unwrap_or("ANY") {
                "INT" => ColumnType::Int,
                "FLOAT" => ColumnType::Float,
                "STR" => ColumnType::Str,
                "BOOL" => ColumnType::Bool,
                _ => ColumnType::Any,
            };
            Ok(Column::new(name, ty))
        })
        .collect::<Result<Vec<_>, ClientError>>()?;
    let rows = doc
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| ClientError::Protocol("missing rows".into()))?
        .iter()
        .map(|r| {
            r.as_array()
                .ok_or_else(|| ClientError::Protocol("row is not an array".into()))?
                .iter()
                .map(|v| {
                    json_to_value(v).ok_or_else(|| ClientError::Protocol(format!("bad value {v}")))
                })
                .collect::<Result<Vec<Value>, _>>()
        })
        .collect::<Result<Vec<_>, ClientError>>()?;
    Ok(ResultSet {
        schema: Schema::new(columns),
        rows,
        mediated_sql: doc
            .get("mediated_sql")
            .and_then(Json::as_str)
            .map(str::to_owned),
        explanation: doc
            .get("explanation")
            .and_then(Json::as_str)
            .map(str::to_owned),
        cache: doc.get("cache").and_then(Json::as_str).map(str::to_owned),
        plan_epoch: doc.get("epoch").and_then(Json::as_f64).map(|e| e as u64),
        truncated: doc
            .get("truncated")
            .and_then(Json::as_bool)
            .unwrap_or(false),
    })
}

/// Cumulative server-side mediation statistics (`GET /stats`). Servers
/// that predate the endpoint simply fail the request; all fields decode
/// leniently to 0 when absent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub epoch: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Fresh compiles performed through the cache path; under the
    /// single-flight guard a stampede on one key adds exactly 1.
    pub cache_compiles: u64,
    /// Entries dropped because a model mutation touched one of their
    /// recorded dependencies (plus explicit purges).
    pub cache_invalidations: u64,
    pub cache_evictions: u64,
    pub cache_entries: u64,
    pub cache_capacity: u64,
    pub axioms: u64,
    /// Number of model parts with an explicit version stamp in the
    /// server's `model_versions` map (0 from older servers that only
    /// report the scalar epoch).
    pub tracked_model_parts: u64,
}

/// A fetched result set.
#[derive(Debug, Clone)]
pub struct ResultSet {
    pub schema: Schema,
    pub rows: Vec<Vec<Value>>,
    /// The mediated SQL the server executed (mediated mode only).
    pub mediated_sql: Option<String>,
    /// The mediation explanation.
    pub explanation: Option<String>,
    /// `"hit"` or `"miss"`: whether the server's prepared-query cache
    /// served the compile side. `None` when talking to an older server
    /// that does not send the field (old clients likewise simply ignore
    /// it).
    pub cache: Option<String>,
    /// The model epoch the server's plan was compiled at (mediated mode;
    /// `None` from older servers). Together with the dependency-guarded
    /// cache this certifies which model state produced the rows.
    pub plan_epoch: Option<u64>,
    /// The server dropped rows to honor a [`Statement::max_rows`] /
    /// [`Statement::max_bytes`] cap.
    pub truncated: bool,
}

impl ResultSet {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Convert to an engine table (for local post-processing).
    pub fn into_table(self, name: &str) -> Table {
        Table {
            name: name.to_owned(),
            schema: self.schema,
            rows: self.rows,
        }
    }
}
