//! Per-connection state for the reactor transport: an incremental
//! HTTP/1.1 request parser over an owned byte buffer, plus the
//! framing/keep-alive/timeout state machine the event loop drives.
//!
//! The blocking transport parses straight off the socket
//! ([`crate::http`]'s `read_request`); the reactor cannot block, so here
//! parsing is a pure function of the bytes received so far — called again
//! whenever more bytes arrive — built on the same request-line/header
//! helpers so both transports accept exactly the same dialect.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::http::{
    self, encode_response, HttpRequest, HttpResponse, RequestError, MAX_HEAD_BYTES, MAX_HEAD_LINE,
};

/// Outcome of one incremental parse attempt.
pub(crate) enum ParseStatus {
    /// Not enough bytes yet; call again after the next read.
    Incomplete,
    /// One complete request, consuming this many buffer bytes.
    Complete(Box<HttpRequest>, usize),
}

/// Try to parse one complete request from the front of `buf`.
///
/// Pure and restartable: returns [`ParseStatus::Incomplete`] until the
/// head terminator and the full `Content-Length` body have arrived, and
/// enforces the same head-line/head-size/body-size caps as the blocking
/// reader — a byte-dripping peer is bounded by the caps here and by the
/// reactor's read deadline.
pub(crate) fn try_parse_request(
    buf: &[u8],
    max_body_bytes: usize,
) -> Result<ParseStatus, RequestError> {
    // Tolerate blank line(s) between pipelined requests (RFC 9112 §2.2).
    let mut start = 0;
    while start < buf.len() && (buf[start] == b'\r' || buf[start] == b'\n') {
        start += 1;
        if start > 8 {
            return Err(RequestError::Malformed("blank request".into()));
        }
    }
    let head = &buf[start..];

    // Find the end of the head: the first empty line.
    let mut head_end = None; // offset past the terminating blank line
    let mut line_start = 0;
    for (i, &b) in head.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        let line = &head[line_start..i];
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        if i - line_start + 1 > MAX_HEAD_LINE {
            return Err(RequestError::HeadTooLarge("head line too long".into()));
        }
        if line.is_empty() {
            head_end = Some(i + 1);
            break;
        }
        line_start = i + 1;
    }
    let Some(head_end) = head_end else {
        // Head still arriving: bound the line in progress and the total.
        if head.len() - line_start > MAX_HEAD_LINE {
            return Err(RequestError::HeadTooLarge("head line too long".into()));
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(RequestError::HeadTooLarge("request head too large".into()));
        }
        return Ok(ParseStatus::Incomplete);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(RequestError::HeadTooLarge("request head too large".into()));
    }

    let head_text = String::from_utf8_lossy(&head[..head_end]);
    let mut lines = head_text.lines();
    let request_line = lines.next().unwrap_or_default();
    if request_line.trim().is_empty() {
        return Err(RequestError::Malformed("blank request".into()));
    }
    let (method, path, query, version) = http::parse_request_line(request_line)?;
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        http::insert_header_line(&mut headers, line);
    }

    let body_len = http::content_length(&headers, max_body_bytes)?;
    let total = start + head_end + body_len;
    if buf.len() < total {
        return Ok(ParseStatus::Incomplete);
    }
    let body = buf[start + head_end..total].to_vec();
    Ok(ParseStatus::Complete(
        Box::new(HttpRequest {
            method,
            path,
            query,
            headers,
            body,
            version,
        }),
        total,
    ))
}

/// Where a reactor connection is in its request/response cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Waiting for (more of) the next request.
    Reading,
    /// A complete request is with the worker pool; no further reads until
    /// its response is written (pipelined successors wait in `buf`).
    InFlight {
        /// Whether the connection persists after this response.
        keep: bool,
    },
    /// A chunked response is in progress: the owning worker pumps body
    /// chunks through [`Conn::body_stream`], the reactor frames and writes
    /// them as the socket drains, and watches the socket for a peer
    /// disconnect (which cancels the producer).
    Streaming {
        /// Whether the connection persists after a *clean* stream end.
        keep: bool,
    },
    /// Final response queued (or none); flush `out`, then close.
    Closing,
}

/// One message from the producing worker to the reactor on a streaming
/// response. The channel is bounded, so a worker outrunning the socket
/// blocks on `send` — backpressure that keeps the reactor-side buffer
/// bounded no matter how large the result is.
pub(crate) enum StreamMsg {
    /// Raw body bytes (unframed; the reactor applies chunk framing).
    Chunk(Vec<u8>),
    /// The producer finished. `clean` = write the terminal chunk and
    /// resume keep-alive; otherwise close without it so the peer detects
    /// the truncation.
    End { clean: bool },
}

/// Reactor-side handle to an in-progress streamed response.
pub(crate) struct StreamHandle {
    /// Body chunks from the producing worker.
    pub(crate) rx: mpsc::Receiver<StreamMsg>,
    /// Flipped by the reactor when the peer disconnects mid-stream; the
    /// producer polls it (via its `CancelToken`) and aborts the plan.
    pub(crate) cancel: Arc<AtomicBool>,
}

/// One nonblocking connection, exclusively owned by the reactor shard
/// it was assigned to at accept time: only that shard's event loop
/// reads, writes, times out, or closes it (workers see connection *ids*,
/// never sockets), so no per-connection locking exists anywhere.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    /// Received-but-unparsed bytes (may hold pipelined requests).
    pub(crate) buf: Vec<u8>,
    /// Encoded response bytes not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    pub(crate) state: ConnState,
    /// Requests served (or dispatched) on this connection so far.
    pub(crate) served: usize,
    /// Deadline for completing the partially-received request in `buf`
    /// (set when the first byte arrives, cleared per parsed request).
    pub(crate) read_deadline: Option<Instant>,
    /// Deadline for draining `out` (a peer that stops reading cannot pin
    /// a response buffer forever).
    pub(crate) write_deadline: Option<Instant>,
    /// Start of the current idle period (no buffered bytes, nothing in
    /// flight) — the idle-timeout clock.
    pub(crate) idle_since: Instant,
    /// The peer sent FIN: no more request bytes will ever arrive, but a
    /// half-closing client may still be owed (and read) responses.
    pub(crate) peer_eof: bool,
    /// Live streamed response, present exactly while `state` is
    /// [`ConnState::Streaming`].
    pub(crate) body_stream: Option<StreamHandle>,
}

/// How long a queued response may wait for the peer to read it.
const WRITE_DEADLINE: Duration = Duration::from_secs(10);

impl Conn {
    pub(crate) fn new(stream: TcpStream, now: Instant) -> Conn {
        let _ = stream.set_nodelay(true);
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            state: ConnState::Reading,
            served: 0,
            read_deadline: None,
            write_deadline: None,
            idle_since: now,
            peer_eof: false,
            body_stream: None,
        }
    }

    /// Should the reactor poll this connection for readability? During a
    /// stream the socket is watched too — not for requests, but so a
    /// peer's FIN is observed promptly and cancels the running plan.
    pub(crate) fn wants_read(&self) -> bool {
        (self.state == ConnState::Reading || matches!(self.state, ConnState::Streaming { .. }))
            && !self.peer_eof
    }

    /// Should the reactor poll this connection for writability?
    pub(crate) fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// The `(read, write)` readiness interest the owning shard should
    /// register with its poller. Derived entirely from connection state,
    /// so re-submitting it after every state change is always correct —
    /// the poller skips the syscall when nothing changed.
    pub(crate) fn interest(&self) -> (bool, bool) {
        (self.wants_read(), self.wants_write())
    }

    /// Queue an encoded response behind any bytes already pending.
    pub(crate) fn queue_response(&mut self, resp: &HttpResponse, keep_alive: bool, now: Instant) {
        self.queue_bytes(&encode_response(resp, keep_alive), now);
    }

    /// Queue raw pre-encoded bytes (a chunked-response head or chunk
    /// frame) behind any bytes already pending.
    pub(crate) fn queue_bytes(&mut self, bytes: &[u8], now: Instant) {
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        self.out.extend_from_slice(bytes);
        // Armed only when output *first* becomes pending (try_write
        // clears it on drain): a peer that keeps triggering responses
        // without ever reading them must not keep pushing the deadline
        // out, or its buffer would grow for as long as it floods.
        if self.write_deadline.is_none() {
            self.write_deadline = Some(now + WRITE_DEADLINE);
        }
    }

    /// Bytes queued but not yet accepted by the socket — the reactor
    /// stops refilling from a stream channel past a watermark so its
    /// buffer stays bounded (backpressure then falls on the producer).
    pub(crate) fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Push pending output into the socket. `Ok(true)` = fully drained,
    /// `Ok(false)` = the socket would block; any error means the
    /// connection is dead.
    pub(crate) fn try_write(&mut self) -> std::io::Result<bool> {
        while self.out_pos < self.out.len() {
            match (&self.stream).write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        self.write_deadline = None;
        Ok(true)
    }

    /// Drain the socket into `buf`. `Ok(true)` = the peer closed its end;
    /// any error (other than would-block) means the connection is dead.
    pub(crate) fn read_available(&mut self) -> std::io::Result<bool> {
        let mut chunk = [0u8; 8 * 1024];
        loop {
            match (&self.stream).read(&mut chunk) {
                Ok(0) => return Ok(true),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Close the socket for good (best effort).
    pub(crate) fn shutdown(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(input: &[u8]) -> ParseStatus {
        try_parse_request(input, 1024 * 1024).unwrap()
    }

    #[test]
    fn incremental_parse_waits_for_the_full_head_and_body() {
        let full = b"POST /query?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody";
        for cut in 0..full.len() {
            assert!(
                matches!(parse_ok(&full[..cut]), ParseStatus::Incomplete),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        match parse_ok(full) {
            ParseStatus::Complete(req, consumed) => {
                assert_eq!(consumed, full.len());
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/query");
                assert_eq!(req.query.get("x").map(String::as_str), Some("1"));
                assert_eq!(req.version, "HTTP/1.1");
                assert_eq!(req.body, b"body");
            }
            ParseStatus::Incomplete => panic!("full request must parse"),
        }
    }

    #[test]
    fn pipelined_requests_are_consumed_one_at_a_time() {
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n".to_vec();
        let ParseStatus::Complete(first, consumed) = parse_ok(&two) else {
            panic!("first request must parse");
        };
        assert_eq!(first.path, "/a");
        let ParseStatus::Complete(second, rest) = parse_ok(&two[consumed..]) else {
            panic!("second request must parse");
        };
        assert_eq!(second.path, "/b");
        assert_eq!(consumed + rest, two.len());
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        match parse_ok(b"GET /x HTTP/1.1\nHost: h\n\n") {
            ParseStatus::Complete(req, _) => assert_eq!(req.path, "/x"),
            ParseStatus::Incomplete => panic!("LF-only head must parse"),
        }
    }

    #[test]
    fn leading_blank_lines_are_tolerated_but_bounded() {
        match parse_ok(b"\r\n\r\nGET /x HTTP/1.1\r\n\r\n") {
            ParseStatus::Complete(req, consumed) => {
                assert_eq!(req.path, "/x");
                assert_eq!(consumed, b"\r\n\r\nGET /x HTTP/1.1\r\n\r\n".len());
            }
            ParseStatus::Incomplete => panic!("blank-prefixed request must parse"),
        }
        let flood = b"\n\n\n\n\n\n\n\n\n\nGET /x HTTP/1.1\r\n\r\n";
        assert!(matches!(
            try_parse_request(flood, 1024),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_pieces_fail_with_the_right_error() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEAD_LINE));
        assert!(matches!(
            try_parse_request(long_line.as_bytes(), 1024),
            Err(RequestError::HeadTooLarge(_))
        ));
        // An unterminated head growing past the line cap fails early,
        // before any terminator arrives.
        let drip = vec![b'a'; MAX_HEAD_LINE + 2];
        assert!(matches!(
            try_parse_request(&drip, 1024),
            Err(RequestError::HeadTooLarge(_))
        ));
        assert!(matches!(
            try_parse_request(b"POST /q HTTP/1.1\r\nContent-Length: 4096\r\n\r\n", 1024),
            Err(RequestError::TooLarge(_))
        ));
        assert!(matches!(
            try_parse_request(b"POST /q HTTP/1.1\r\nContent-Length: pear\r\n\r\n", 1024),
            Err(RequestError::Malformed(_))
        ));
    }
}
