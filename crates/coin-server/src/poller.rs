//! Pluggable readiness backends for the reactor shards (Unix only).
//!
//! [`Poller`] hides the difference between the portable `poll(2)`
//! backend and the Linux `epoll(7)` backend behind one
//! register / update / deregister / wait surface keyed by
//! connection-id tokens. Both are bound directly from libc with
//! `extern "C"` — no external crate, consistent with the workspace's
//! offline-vendoring policy.
//!
//! The structural difference between the backends is *where the
//! interest set lives*:
//!
//! * **poll(2)** keeps no kernel-side state: the whole `pollfd` array
//!   is rebuilt and copied into the kernel on every wakeup — O(conns)
//!   per iteration, however few of them are active.
//! * **epoll(7)** keeps a persistent interest set inside the kernel:
//!   one `epoll_ctl` per registration and per actual interest *change*,
//!   and a wakeup costs O(ready), not O(registered).
//!
//! [`Poller::interest_ops`] counts the interest-set syscall traffic
//! each backend generates (pollfd slots submitted per wait, `epoll_ctl`
//! calls). The conformance suite asserts on it: under epoll the count
//! must stay flat as the idle fleet grows, which is the machine-checkable
//! form of "no per-wakeup O(conns) rebuild".

use std::collections::HashMap;
use std::io::ErrorKind;
use std::os::raw::{c_int, c_short, c_ulong};
use std::os::unix::io::RawFd;

// --- a thin poll(2) binding -------------------------------------------------

pub(crate) const POLLIN: c_short = 0x001;
pub(crate) const POLLOUT: c_short = 0x004;
pub(crate) const POLLERR: c_short = 0x008;
pub(crate) const POLLHUP: c_short = 0x010;
pub(crate) const POLLNVAL: c_short = 0x020;

/// `struct pollfd` (POSIX): identical layout on every Unix we target.
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct PollFd {
    pub(crate) fd: RawFd,
    pub(crate) events: c_short,
    pub(crate) revents: c_short,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Block until any registered fd is ready or `timeout_ms` elapses
/// (`None` = wait indefinitely). Returns how many fds have events.
/// Also used directly by the acceptor thread, whose two fds (listener +
/// wake pipe) never justify an interest set.
pub(crate) fn poll_wait(fds: &mut [PollFd], timeout_ms: Option<i32>) -> std::io::Result<usize> {
    let timeout = timeout_ms.unwrap_or(-1);
    // SAFETY: `fds` is a valid, exclusively-borrowed slice of pollfd
    // structs for the whole call; poll only writes `revents` in place.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout) };
    if rc < 0 {
        let e = std::io::Error::last_os_error();
        if e.kind() == ErrorKind::Interrupted {
            return Ok(0); // EINTR: just re-run the loop
        }
        return Err(e);
    }
    Ok(rc as usize)
}

// --- a thin epoll(7) binding (Linux only) -----------------------------------

#[cfg(target_os = "linux")]
mod sys_epoll {
    use super::{c_int, RawFd};

    pub(super) const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub(super) const EPOLL_CTL_ADD: c_int = 1;
    pub(super) const EPOLL_CTL_DEL: c_int = 2;
    pub(super) const EPOLL_CTL_MOD: c_int = 3;
    pub(super) const EPOLLIN: u32 = 0x001;
    pub(super) const EPOLLOUT: u32 = 0x004;
    pub(super) const EPOLLERR: u32 = 0x008;
    pub(super) const EPOLLHUP: u32 = 0x010;

    /// `struct epoll_event`. The kernel ABI packs it on x86-64 (12
    /// bytes); other architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        pub(super) events: u32,
        pub(super) data: u64,
    }

    extern "C" {
        pub(super) fn epoll_create1(flags: c_int) -> c_int;
        pub(super) fn epoll_ctl(epfd: c_int, op: c_int, fd: RawFd, event: *mut EpollEvent)
            -> c_int;
        pub(super) fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub(super) fn close(fd: c_int) -> c_int;
    }
}

// --- the backend-neutral surface --------------------------------------------

/// Token a shard reserves for its self-wake pipe (connection ids start
/// at 1 and count up, so they can never collide with it).
pub(crate) const WAKE_TOKEN: u64 = u64::MAX;

/// A readiness backend, resolved from the user-facing
/// [`crate::http::ReactorBackend`] (which may say `Auto`, or ask for
/// epoll on a host that lacks it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Backend {
    Poll,
    #[cfg(target_os = "linux")]
    Epoll,
}

/// One readiness event, normalized across backends: `POLLNVAL` folds
/// into `error`, and a mask-0 registration still reports `error` /
/// `hangup` (both primitives guarantee that).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    pub(crate) token: u64,
    pub(crate) readable: bool,
    pub(crate) writable: bool,
    pub(crate) error: bool,
    pub(crate) hangup: bool,
}

/// A shard's readiness multiplexer.
pub(crate) enum Poller {
    Poll(PollSet),
    #[cfg(target_os = "linux")]
    Epoll(EpollSet),
}

impl Poller {
    pub(crate) fn new(backend: Backend) -> std::io::Result<Poller> {
        match backend {
            Backend::Poll => Ok(Poller::Poll(PollSet::default())),
            #[cfg(target_os = "linux")]
            Backend::Epoll => EpollSet::new().map(Poller::Epoll),
        }
    }

    /// Start watching `fd` under `token`.
    pub(crate) fn register(
        &mut self,
        token: u64,
        fd: RawFd,
        read: bool,
        write: bool,
    ) -> std::io::Result<()> {
        match self {
            Poller::Poll(p) => p.register(token, fd, read, write),
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.register(token, fd, read, write),
        }
    }

    /// Update a registration's interest. A no-op when nothing changed,
    /// so callers may re-submit every touched connection unconditionally.
    pub(crate) fn set_interest(&mut self, token: u64, read: bool, write: bool) {
        match self {
            Poller::Poll(p) => p.set_interest(token, read, write),
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.set_interest(token, read, write),
        }
    }

    /// Stop watching a token (the fd is about to be closed).
    pub(crate) fn deregister(&mut self, token: u64) {
        match self {
            Poller::Poll(p) => p.deregister(token),
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.deregister(token),
        }
    }

    /// Block until something is ready or `timeout_ms` elapses (`None` =
    /// indefinitely), filling `events` with what fired.
    pub(crate) fn wait(
        &mut self,
        timeout_ms: Option<i32>,
        events: &mut Vec<Event>,
    ) -> std::io::Result<()> {
        events.clear();
        match self {
            Poller::Poll(p) => p.wait(timeout_ms, events),
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.wait(timeout_ms, events),
        }
    }

    /// Cumulative interest-set syscall traffic: pollfd slots submitted
    /// (poll) or `epoll_ctl` calls (epoll). See the module docs.
    pub(crate) fn interest_ops(&self) -> u64 {
        match self {
            Poller::Poll(p) => p.ops,
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.ops,
        }
    }
}

// --- poll(2) backend --------------------------------------------------------

/// The portable backend: interest lives in user space and the pollfd
/// array is rebuilt for every wait — the O(conns)-per-wakeup cost the
/// epoll backend exists to avoid.
#[derive(Default)]
pub(crate) struct PollSet {
    slots: HashMap<u64, (RawFd, bool, bool)>,
    fds: Vec<PollFd>,
    tokens: Vec<u64>,
    ops: u64,
}

impl PollSet {
    fn register(&mut self, token: u64, fd: RawFd, read: bool, write: bool) -> std::io::Result<()> {
        self.slots.insert(token, (fd, read, write));
        Ok(())
    }

    fn set_interest(&mut self, token: u64, read: bool, write: bool) {
        if let Some(slot) = self.slots.get_mut(&token) {
            slot.1 = read;
            slot.2 = write;
        }
    }

    fn deregister(&mut self, token: u64) {
        self.slots.remove(&token);
    }

    fn wait(&mut self, timeout_ms: Option<i32>, events: &mut Vec<Event>) -> std::io::Result<()> {
        self.fds.clear();
        self.tokens.clear();
        for (&token, &(fd, read, write)) in &self.slots {
            let mut mask = 0;
            if read {
                mask |= POLLIN;
            }
            if write {
                mask |= POLLOUT;
            }
            // mask == 0 still reports POLLERR/POLLHUP, so a vanished
            // peer is noticed even while nothing is wanted.
            self.fds.push(PollFd {
                fd,
                events: mask,
                revents: 0,
            });
            self.tokens.push(token);
        }
        // Every registered slot crosses the syscall boundary on every
        // wait: that is the rebuild cost being counted.
        self.ops += self.slots.len() as u64;
        let n = poll_wait(&mut self.fds, timeout_ms)?;
        if n == 0 {
            return Ok(());
        }
        for (slot, &token) in self.fds.iter().zip(&self.tokens) {
            if slot.revents == 0 {
                continue;
            }
            events.push(Event {
                token,
                readable: slot.revents & POLLIN != 0,
                writable: slot.revents & POLLOUT != 0,
                error: slot.revents & (POLLERR | POLLNVAL) != 0,
                hangup: slot.revents & POLLHUP != 0,
            });
        }
        Ok(())
    }
}

// --- epoll(7) backend -------------------------------------------------------

/// The Linux backend: interest lives in the kernel, updated only on
/// registration and on actual interest changes.
#[cfg(target_os = "linux")]
pub(crate) struct EpollSet {
    epfd: RawFd,
    /// Mirror of the kernel-side interest set, so unchanged interest
    /// submissions can be skipped without a syscall.
    interest: HashMap<u64, (RawFd, bool, bool)>,
    buf: Vec<sys_epoll::EpollEvent>,
    ops: u64,
}

#[cfg(target_os = "linux")]
impl EpollSet {
    fn new() -> std::io::Result<EpollSet> {
        // SAFETY: plain syscall, no pointers involved.
        let epfd = unsafe { sys_epoll::epoll_create1(sys_epoll::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(EpollSet {
            epfd,
            interest: HashMap::new(),
            buf: Vec::new(),
            ops: 0,
        })
    }

    fn mask(read: bool, write: bool) -> u32 {
        let mut mask = 0;
        if read {
            mask |= sys_epoll::EPOLLIN;
        }
        if write {
            mask |= sys_epoll::EPOLLOUT;
        }
        // mask == 0 still reports EPOLLERR/EPOLLHUP (they are always
        // delivered), matching the poll backend's semantics.
        mask
    }

    fn ctl(&mut self, op: c_int, fd: RawFd, mask: u32, token: u64) -> std::io::Result<()> {
        let mut ev = sys_epoll::EpollEvent {
            events: mask,
            data: token,
        };
        self.ops += 1;
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { sys_epoll::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn register(&mut self, token: u64, fd: RawFd, read: bool, write: bool) -> std::io::Result<()> {
        self.ctl(sys_epoll::EPOLL_CTL_ADD, fd, Self::mask(read, write), token)?;
        self.interest.insert(token, (fd, read, write));
        Ok(())
    }

    fn set_interest(&mut self, token: u64, read: bool, write: bool) {
        let Some(&(fd, cur_read, cur_write)) = self.interest.get(&token) else {
            return;
        };
        if (cur_read, cur_write) == (read, write) {
            return; // persistent interest set: unchanged = no syscall
        }
        if self
            .ctl(sys_epoll::EPOLL_CTL_MOD, fd, Self::mask(read, write), token)
            .is_ok()
        {
            self.interest.insert(token, (fd, read, write));
        }
    }

    fn deregister(&mut self, token: u64) {
        if let Some((fd, _, _)) = self.interest.remove(&token) {
            // The event argument must be non-null for portability with
            // pre-2.6.9 kernels; its contents are ignored on DEL.
            let _ = self.ctl(sys_epoll::EPOLL_CTL_DEL, fd, 0, token);
        }
    }

    fn wait(&mut self, timeout_ms: Option<i32>, events: &mut Vec<Event>) -> std::io::Result<()> {
        const MAX_EVENTS: usize = 1024;
        self.buf
            .resize(MAX_EVENTS, sys_epoll::EpollEvent { events: 0, data: 0 });
        let timeout = timeout_ms.unwrap_or(-1);
        // SAFETY: `buf` is a valid, exclusively-borrowed array of
        // epoll_event structs for the whole call.
        let rc = unsafe {
            sys_epoll::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                MAX_EVENTS as c_int,
                timeout,
            )
        };
        if rc < 0 {
            let e = std::io::Error::last_os_error();
            if e.kind() == ErrorKind::Interrupted {
                return Ok(()); // EINTR: just re-run the loop
            }
            return Err(e);
        }
        for raw in &self.buf[..rc as usize] {
            // Copy out of the (possibly packed) struct before use.
            let mask = raw.events;
            let token = raw.data;
            events.push(Event {
                token,
                readable: mask & sys_epoll::EPOLLIN != 0,
                writable: mask & sys_epoll::EPOLLOUT != 0,
                error: mask & sys_epoll::EPOLLERR != 0,
                hangup: mask & sys_epoll::EPOLLHUP != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollSet {
    fn drop(&mut self) {
        // SAFETY: epfd came from epoll_create1 and is closed only here.
        unsafe { sys_epoll::close(self.epfd) };
    }
}
