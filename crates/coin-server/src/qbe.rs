//! The HTML Query-By-Example interface.
//!
//! "We have developed two types of ready-to-use interfaces: A HyperText
//! Markup Language (HTML) Query-By-Example (QBE) and an ODBC driver"
//! (paper §2). This module renders the QBE form from the dictionary and
//! translates submissions into SQL for the mediator.
//!
//! Form conventions: the user picks a table, a receiver context, and fills
//! per-column condition boxes. A condition is an operator followed by a
//! value (`=IBM`, `>1000000`, `<>JPY`); a bare value means equality; a
//! checkbox selects which columns to project (all when none checked).

use coin_core::CoinSystem;

use crate::http::HttpResponse;
use crate::json::parse_form;

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Render the QBE form for every table in the dictionary.
pub fn render_form(system: &CoinSystem) -> String {
    let mut out = String::from(
        "<html><head><title>COIN Query-By-Example</title></head><body>\
         <h1>Context Interchange Prototype — QBE</h1>\n",
    );
    let contexts: Vec<&String> = system.contexts().keys().collect();
    for (source, table, schema) in system.dictionary().listing() {
        out.push_str(&format!(
            "<form method=\"POST\" action=\"/qbe\">\
             <h2>{} <small>(source {})</small></h2>\n\
             <input type=\"hidden\" name=\"table\" value=\"{}\"/>\n",
            html_escape(&table),
            html_escape(&source),
            html_escape(&table),
        ));
        out.push_str("<label>context: <select name=\"context\">");
        for c in &contexts {
            out.push_str(&format!(
                "<option value=\"{0}\">{0}</option>",
                html_escape(c)
            ));
        }
        out.push_str("</select></label><table>\n");
        out.push_str("<tr><th>column</th><th>show</th><th>condition</th></tr>\n");
        for col in &schema.columns {
            let base = col
                .name
                .rsplit_once('.')
                .map_or(col.name.as_str(), |(_, b)| b);
            out.push_str(&format!(
                "<tr><td>{0} ({1})</td>\
                 <td><input type=\"checkbox\" name=\"show_{0}\"/></td>\
                 <td><input type=\"text\" name=\"cond_{0}\"/></td></tr>\n",
                html_escape(base),
                col.ty.name(),
            ));
        }
        out.push_str("</table><input type=\"submit\" value=\"Run\"/></form>\n<hr/>\n");
    }
    out.push_str("</body></html>");
    out
}

/// Translate a QBE form submission into SQL.
///
/// Returns the SQL and the chosen receiver context.
pub fn form_to_sql(
    form: &std::collections::BTreeMap<String, String>,
) -> Result<(String, String), String> {
    let table = form
        .get("table")
        .filter(|t| !t.is_empty())
        .ok_or("no table selected")?;
    if !table.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("bad table name {table:?}"));
    }
    let context = form
        .get("context")
        .filter(|c| !c.is_empty())
        .ok_or("no context selected")?
        .clone();

    let mut projected: Vec<String> = form
        .iter()
        .filter(|(k, _)| k.starts_with("show_"))
        .map(|(k, _)| k["show_".len()..].to_owned())
        .collect();
    projected.sort();
    let select_list = if projected.is_empty() {
        "*".to_owned()
    } else {
        projected.join(", ")
    };

    let mut conditions = Vec::new();
    for (k, v) in form {
        let Some(col) = k.strip_prefix("cond_") else {
            continue;
        };
        let v = v.trim();
        if v.is_empty() {
            continue;
        }
        let (op, rest) = if let Some(r) = v.strip_prefix("<>") {
            ("<>", r)
        } else if let Some(r) = v.strip_prefix(">=") {
            (">=", r)
        } else if let Some(r) = v.strip_prefix("<=") {
            ("<=", r)
        } else if let Some(r) = v.strip_prefix('=') {
            ("=", r)
        } else if let Some(r) = v.strip_prefix('>') {
            (">", r)
        } else if let Some(r) = v.strip_prefix('<') {
            ("<", r)
        } else {
            ("=", v)
        };
        let rest = rest.trim();
        // Numeric values stay bare; anything else becomes a string literal.
        let literal = if rest.parse::<f64>().is_ok() {
            rest.to_owned()
        } else {
            format!("'{}'", rest.replace('\'', "''"))
        };
        conditions.push(format!("{col} {op} {literal}"));
    }

    let mut sql = format!("SELECT {select_list} FROM {table}");
    if !conditions.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conditions.join(" AND "));
    }
    Ok((sql, context))
}

/// Handle a QBE POST: run the mediated query and render an HTML answer.
pub fn handle_submission(system: &CoinSystem, body: &str) -> HttpResponse {
    let form = parse_form(body);
    let (sql, context) = match form_to_sql(&form) {
        Ok(x) => x,
        Err(m) => return HttpResponse::error(400, &m),
    };
    match system.query(&sql, &context) {
        Ok(answer) => {
            let mut out = String::from("<html><body><h1>Answer</h1>\n");
            out.push_str(&format!(
                "<p>receiver query: <code>{}</code></p>\n\
                 <p>mediated query: <code>{}</code></p>\n<table border=\"1\">\n<tr>",
                html_escape(&sql),
                html_escape(&answer.mediated.query.to_string())
            ));
            for c in &answer.table.schema.columns {
                out.push_str(&format!("<th>{}</th>", html_escape(&c.name)));
            }
            out.push_str("</tr>\n");
            for row in &answer.table.rows {
                out.push_str("<tr>");
                for v in row {
                    out.push_str(&format!("<td>{}</td>", html_escape(&v.render())));
                }
                out.push_str("</tr>\n");
            }
            out.push_str("</table>\n<p><a href=\"/qbe\">back</a></p></body></html>");
            HttpResponse::html(&out)
        }
        Err(e) => HttpResponse::error(400, &format!("query failed: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn form(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect()
    }

    #[test]
    fn bare_value_is_equality() {
        let (sql, ctx) = form_to_sql(&form(&[
            ("table", "r1"),
            ("context", "c_recv"),
            ("cond_cname", "IBM"),
        ]))
        .unwrap();
        assert_eq!(sql, "SELECT * FROM r1 WHERE cname = 'IBM'");
        assert_eq!(ctx, "c_recv");
    }

    #[test]
    fn operators_and_numbers() {
        let (sql, _) = form_to_sql(&form(&[
            ("table", "r1"),
            ("context", "c_recv"),
            ("cond_revenue", ">1000000"),
            ("cond_currency", "<>JPY"),
        ]))
        .unwrap();
        assert_eq!(
            sql,
            "SELECT * FROM r1 WHERE currency <> 'JPY' AND revenue > 1000000"
        );
    }

    #[test]
    fn projection_checkboxes() {
        let (sql, _) = form_to_sql(&form(&[
            ("table", "r1"),
            ("context", "c_recv"),
            ("show_cname", "on"),
            ("show_revenue", "on"),
        ]))
        .unwrap();
        assert_eq!(sql, "SELECT cname, revenue FROM r1");
    }

    #[test]
    fn missing_table_or_context_rejected() {
        assert!(form_to_sql(&form(&[("context", "c")])).is_err());
        assert!(form_to_sql(&form(&[("table", "r1")])).is_err());
    }

    #[test]
    fn hostile_table_name_rejected() {
        assert!(form_to_sql(&form(&[("table", "r1; DROP"), ("context", "c_recv")])).is_err());
    }

    #[test]
    fn quote_escaping_in_values() {
        let (sql, _) = form_to_sql(&form(&[
            ("table", "r1"),
            ("context", "c_recv"),
            ("cond_cname", "O'Hare"),
        ]))
        .unwrap();
        assert!(sql.contains("'O''Hare'"));
    }

    #[test]
    fn form_renders_for_figure2() {
        let sys = coin_core::fixtures::figure2_system();
        let html = render_form(&sys);
        assert!(html.contains("r1"));
        assert!(html.contains("cond_revenue"));
        assert!(html.contains("c_recv"));
    }

    #[test]
    fn qbe_submission_end_to_end() {
        let sys = coin_core::fixtures::figure2_system();
        let resp = handle_submission(
            &sys,
            "table=r1&context=c_recv&show_cname=on&show_revenue=on&cond_currency=%3DJPY",
        );
        assert_eq!(resp.status, 200);
        let body = String::from_utf8_lossy(&resp.body);
        assert!(body.contains("NTT"), "{body}");
        assert!(body.contains("9600000"), "{body}");
    }
}
