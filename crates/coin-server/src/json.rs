//! A minimal JSON implementation for the wire protocol.
//!
//! The prototype tunnels its ODBC-family protocol through HTTP (paper §2).
//! Requests and responses are JSON documents; this module provides the
//! value type, a recursive-descent parser and a serializer — self-contained
//! so the repository carries no serialization dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order via `Vec` to make output
/// deterministic and testable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_owned())
    }

    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, m: impl Into<String>) -> JsonError {
        JsonError {
            message: m.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut out = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                loop {
                    out.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(out));
                        }
                        _ => return Err(self.err("expected , or ]")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut out = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    out.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(out));
                        }
                        _ => return Err(self.err("expected , or }")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad unicode scalar"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(self.err(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a value"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| self.err(format!("bad number {text}: {e}")))
    }
}

/// Parse a JSON document.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(v)
}

/// Append `s` as a quoted, escaped JSON string.
///
/// Fast path: scan the raw bytes for the first one needing an escape
/// (`"`, `\`, or a control byte — all ASCII, so the byte scan is UTF-8
/// safe) and copy clean spans wholesale. The common case — no byte needs
/// escaping — is a single `push_str` of the entire string.
pub fn escape_into(s: &str, out: &mut String) {
    #[inline]
    fn needs_escape(b: u8) -> bool {
        b == b'"' || b == b'\\' || b < 0x20
    }
    out.push('"');
    let bytes = s.as_bytes();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if needs_escape(b) {
            out.push_str(&s[start..i]);
            match b {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\t' => out.push_str("\\t"),
                b'\r' => out.push_str("\\r"),
                c => write!(out, "\\u{:04x}", c as u32).unwrap(),
            }
            i += 1;
            start = i;
        } else {
            i += 1;
        }
    }
    out.push_str(&s[start..]);
    out.push('"');
}

/// Append a JSON number: integral doubles print without a fraction. The
/// single formatting rule for every serialization path ([`Json::Num`]'s
/// tree serializer delegates here, so [`JsonBuf`] output can never
/// diverge from it).
pub fn number_into(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        write!(out, "{n:.0}").unwrap();
    } else {
        write!(out, "{n}").unwrap();
    }
}

/// An incremental JSON serializer over a reusable `String` buffer.
///
/// The `/query` hot path serializes result sets **directly** into one
/// output buffer with this writer — column headers, then every row and
/// cell — instead of first assembling a [`Json`] tree (one heap node per
/// cell) and then walking it. Commas are managed per open container, so
/// callers just emit containers, keys and values in order. `clear()`
/// retains the allocation for reuse across serializations.
///
/// The writer does not validate shape (an object value without a
/// preceding [`JsonBuf::key`] is the caller's bug); it is a serialization
/// buffer, not a document model. Output produced by the high-level
/// methods is always valid JSON given well-formed call order.
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
    /// One flag per open container: has an element been written?
    comma: Vec<bool>,
}

impl JsonBuf {
    pub fn new() -> JsonBuf {
        JsonBuf::default()
    }

    /// A writer whose buffer pre-reserves `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> JsonBuf {
        JsonBuf {
            out: String::with_capacity(capacity),
            comma: Vec::new(),
        }
    }

    /// Comma bookkeeping before any element in the current container.
    #[inline]
    fn pre(&mut self) {
        if let Some(c) = self.comma.last_mut() {
            if *c {
                self.out.push(',');
            } else {
                *c = true;
            }
        }
    }

    pub fn begin_obj(&mut self) -> &mut Self {
        self.pre();
        self.out.push('{');
        self.comma.push(false);
        self
    }

    pub fn end_obj(&mut self) -> &mut Self {
        self.comma.pop();
        self.out.push('}');
        self
    }

    pub fn begin_arr(&mut self) -> &mut Self {
        self.pre();
        self.out.push('[');
        self.comma.push(false);
        self
    }

    pub fn end_arr(&mut self) -> &mut Self {
        self.comma.pop();
        self.out.push(']');
        self
    }

    /// Object key; the next emitted element is its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pre();
        escape_into(k, &mut self.out);
        self.out.push(':');
        // The value that follows must not get its own comma.
        if let Some(c) = self.comma.last_mut() {
            *c = false;
        }
        self
    }

    pub fn null(&mut self) -> &mut Self {
        self.pre();
        self.out.push_str("null");
        self
    }

    pub fn bool_val(&mut self, b: bool) -> &mut Self {
        self.pre();
        self.out.push_str(if b { "true" } else { "false" });
        self
    }

    pub fn str_val(&mut self, s: &str) -> &mut Self {
        self.pre();
        escape_into(s, &mut self.out);
        self
    }

    pub fn num(&mut self, n: f64) -> &mut Self {
        self.pre();
        number_into(n, &mut self.out);
        self
    }

    /// A 64-bit integer as a quoted decimal string (the wire protocol's
    /// lossless integer encoding), formatted straight into the buffer.
    pub fn int_str(&mut self, i: i64) -> &mut Self {
        self.pre();
        self.out.push('"');
        write!(self.out, "{i}").unwrap();
        self.out.push('"');
        self
    }

    /// An already-serialized JSON fragment.
    pub fn fragment(&mut self, j: &Json) -> &mut Self {
        self.pre();
        write_into(j, &mut self.out);
        self
    }

    /// The serialized document so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Reset for reuse, keeping the buffer's allocation.
    pub fn clear(&mut self) {
        self.out.clear();
        self.comma.clear();
    }

    /// Take the serialized document, consuming the writer.
    pub fn into_string(self) -> String {
        self.out
    }

    /// Drain the bytes written so far, keeping container/comma state so
    /// writing can continue — the chunked-response path emits the buffer
    /// mid-document after every row batch.
    pub fn take(&mut self) -> String {
        std::mem::take(&mut self.out)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        write_into(self, &mut s);
        f.write_str(&s)
    }
}

fn write_into(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => number_into(*n, out),
        Json::Str(s) => escape_into(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_into(v, out);
            }
            out.push('}');
        }
    }
}

/// Parse a `application/x-www-form-urlencoded` body.
pub fn parse_form(body: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for pair in body.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => {
                out.insert(
                    coin_wrapper::web::url_decode(k),
                    coin_wrapper::web::url_decode(v),
                );
            }
            None => {
                out.insert(coin_wrapper::web::url_decode(pair), String::new());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Json::obj([
            ("sql", Json::str("SELECT * FROM r1")),
            ("limit", Json::Num(5.0)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj([("k", Json::str("v"))])),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , -3e2 ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap(),
            &[Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)]
        );
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\ndé""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndé");
        let out = Json::str("x\"y\\z\n").to_string();
        assert_eq!(out, r#""x\"y\\z\n""#);
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"通貨\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "通貨");
    }

    #[test]
    fn errors() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("01x").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn get_on_non_object_is_none() {
        assert!(Json::Num(1.0).get("x").is_none());
    }

    #[test]
    fn escape_fast_path_matches_slow_path() {
        // Mixed clean spans and escapes, multi-byte UTF-8 adjacent to
        // escaped bytes, and strings needing no escapes at all.
        for s in [
            "",
            "plain ascii",
            "通貨 and €",
            "a\"b\\c\nd\te\rf\u{1}g",
            "\"",
            "\u{0}\u{1f}",
            "ends with escape\n",
            "\nstarts with escape",
            "日本\"語",
        ] {
            let mut direct = String::new();
            escape_into(s, &mut direct);
            assert_eq!(direct, Json::str(s).to_string(), "{s:?}");
            // And it parses back to the original.
            assert_eq!(parse(&direct).unwrap().as_str().unwrap(), s);
        }
    }

    #[test]
    fn jsonbuf_builds_equivalent_documents() {
        let mut b = JsonBuf::new();
        b.begin_obj();
        b.key("columns").begin_arr();
        b.begin_obj().key("name").str_val("a").end_obj();
        b.end_arr();
        b.key("rows").begin_arr();
        b.begin_arr()
            .null()
            .bool_val(true)
            .int_str(1 << 60)
            .end_arr();
        b.begin_arr().num(2.5).str_val("x\"y").end_arr();
        b.end_arr();
        b.key("n").num(3.0);
        b.end_obj();
        let doc = parse(b.as_str()).unwrap();
        let want = Json::obj([
            (
                "columns",
                Json::Arr(vec![Json::obj([("name", Json::str("a"))])]),
            ),
            (
                "rows",
                Json::Arr(vec![
                    Json::Arr(vec![
                        Json::Null,
                        Json::Bool(true),
                        Json::Str((1i64 << 60).to_string()),
                    ]),
                    Json::Arr(vec![Json::Num(2.5), Json::str("x\"y")]),
                ]),
            ),
            ("n", Json::Num(3.0)),
        ]);
        assert_eq!(doc, want);
    }

    #[test]
    fn jsonbuf_clear_reuses_buffer() {
        let mut b = JsonBuf::with_capacity(256);
        b.begin_arr().num(1.0).end_arr();
        assert_eq!(b.as_str(), "[1]");
        b.clear();
        assert!(b.as_str().is_empty());
        b.begin_obj().key("k").fragment(&Json::str("v")).end_obj();
        assert_eq!(b.as_str(), "{\"k\":\"v\"}");
    }

    #[test]
    fn form_parsing() {
        let m = parse_form("table=r1&cond_cname=%3DIBM&x=a+b&flag");
        assert_eq!(m["table"], "r1");
        assert_eq!(m["cond_cname"], "=IBM");
        assert_eq!(m["x"], "a b");
        assert_eq!(m["flag"], "");
    }
}
