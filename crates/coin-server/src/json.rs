//! A minimal JSON implementation for the wire protocol.
//!
//! The prototype tunnels its ODBC-family protocol through HTTP (paper §2).
//! Requests and responses are JSON documents; this module provides the
//! value type, a recursive-descent parser and a serializer — self-contained
//! so the repository carries no serialization dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order via `Vec` to make output
/// deterministic and testable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_owned())
    }

    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, m: impl Into<String>) -> JsonError {
        JsonError {
            message: m.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut out = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                loop {
                    out.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(out));
                        }
                        _ => return Err(self.err("expected , or ]")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut out = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    out.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(out));
                        }
                        _ => return Err(self.err("expected , or }")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad unicode scalar"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(self.err(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a value"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| self.err(format!("bad number {text}: {e}")))
    }
}

/// Parse a JSON document.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(v)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        write_into(self, &mut s);
        f.write_str(&s)
    }
}

fn write_into(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                write!(out, "{n:.0}").unwrap();
            } else {
                write!(out, "{n}").unwrap();
            }
        }
        Json::Str(s) => escape_into(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_into(v, out);
            }
            out.push('}');
        }
    }
}

/// Parse a `application/x-www-form-urlencoded` body.
pub fn parse_form(body: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for pair in body.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => {
                out.insert(
                    coin_wrapper::web::url_decode(k),
                    coin_wrapper::web::url_decode(v),
                );
            }
            None => {
                out.insert(coin_wrapper::web::url_decode(pair), String::new());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Json::obj([
            ("sql", Json::str("SELECT * FROM r1")),
            ("limit", Json::Num(5.0)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj([("k", Json::str("v"))])),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , -3e2 ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap(),
            &[Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)]
        );
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\ndé""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndé");
        let out = Json::str("x\"y\\z\n").to_string();
        assert_eq!(out, r#""x\"y\\z\n""#);
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"通貨\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "通貨");
    }

    #[test]
    fn errors() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("01x").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn get_on_non_object_is_none() {
        assert!(Json::Num(1.0).get("x").is_none());
    }

    #[test]
    fn form_parsing() {
        let m = parse_form("table=r1&cond_cname=%3DIBM&x=a+b&flag");
        assert_eq!(m["table"], "r1");
        assert_eq!(m["cond_cname"], "=IBM");
        assert_eq!(m["x"], "a b");
        assert_eq!(m["flag"], "");
    }
}
