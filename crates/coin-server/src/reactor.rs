//! The event-driven reactor transport (Unix only).
//!
//! One reactor thread owns the listener and every open connection, all
//! nonblocking, multiplexed with `poll(2)` — bound directly from libc
//! (no external crate, consistent with the workspace's offline-vendoring
//! policy). The loop:
//!
//! 1. **accepts** new connections (shedding over-budget ones with
//!    `503 + Retry-After`),
//! 2. **reads** whatever bytes are ready and runs the incremental parser
//!    ([`crate::conn`]) until a *complete* request emerges,
//! 3. **dispatches** complete requests to the bounded worker queue
//!    (shedding overflow with `503` — the connection stays open),
//! 4. **writes** finished responses back as sockets accept them, and
//! 5. **reaps** deadline violations: stalled requests (`408`), idle
//!    keep-alive connections (silent close), and peers that stop reading
//!    their responses.
//!
//! Workers never see a socket: they take `(connection id, request)`
//! pairs, run the handler (panics contained to a `500`), and hand the
//! encoded response back through a completion queue, waking the reactor
//! through a self-wake socket pair. Idle or slow connections therefore
//! cost no thread, which is what decouples the open-connection count from
//! the pool size — the scaling property measured by the
//! `server_load/stats_idle_fleet` bench scenario.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpListener;
use std::os::raw::{c_int, c_short, c_ulong};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use crate::conn::{try_parse_request, Conn, ConnState, ParseStatus, StreamHandle, StreamMsg};
use crate::http::{
    connection_persists, encode_chunk, encode_stream_head, shed, Handler, HttpError, HttpRequest,
    HttpResponse, RequestError, ServerConfig, ServerHandle, ServerMetrics, CHUNK_TERMINATOR,
};

// --- a thin poll(2) binding -------------------------------------------------

const POLLIN: c_short = 0x001;
const POLLOUT: c_short = 0x004;
const POLLERR: c_short = 0x008;
const POLLHUP: c_short = 0x010;
const POLLNVAL: c_short = 0x020;

/// `struct pollfd` (POSIX): identical layout on every Unix we target.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: c_short,
    revents: c_short,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Block until any registered fd is ready or `timeout_ms` elapses
/// (`None` = wait indefinitely). Returns how many fds have events.
fn poll_wait(fds: &mut [PollFd], timeout_ms: Option<i32>) -> std::io::Result<usize> {
    let timeout = timeout_ms.unwrap_or(-1);
    // SAFETY: `fds` is a valid, exclusively-borrowed slice of pollfd
    // structs for the whole call; poll only writes `revents` in place.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout) };
    if rc < 0 {
        let e = std::io::Error::last_os_error();
        if e.kind() == ErrorKind::Interrupted {
            return Ok(0); // EINTR: just re-run the loop
        }
        return Err(e);
    }
    Ok(rc as usize)
}

// --- the reactor ------------------------------------------------------------

/// What a worker hands back through the completion queue.
enum Completion {
    /// A buffered response for this connection (`None` = the handler
    /// panicked; the reactor answers `500` and closes).
    Response(u64, Option<HttpResponse>),
    /// The handler returned a streaming body: the worker is now pumping
    /// chunks through `rx` and the reactor should write the chunked head
    /// and start framing. `cancel` is the producer's abort flag — the
    /// reactor flips it when the peer disconnects mid-stream.
    StreamStart {
        id: u64,
        status: u16,
        content_type: String,
        rx: mpsc::Receiver<StreamMsg>,
        cancel: Arc<AtomicBool>,
    },
}

/// Bound on body chunks in flight between a producing worker and the
/// reactor: a worker outrunning the socket blocks on `send`, which is
/// the backpressure that keeps streamed responses bounded-memory.
const STREAM_CHANNEL_DEPTH: usize = 2;

/// Stop refilling a connection's output buffer from its stream channel
/// once this many bytes are already pending on the socket.
const STREAM_OUT_WATERMARK: usize = 256 * 1024;

/// Start the reactor transport on an already-bound nonblocking listener.
pub(crate) fn serve(
    listener: TcpListener,
    cfg: ServerConfig,
    handler: Handler,
) -> Result<ServerHandle, HttpError> {
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(ServerMetrics::default());

    // Self-wake channel: workers (and the handle) write one byte to kick
    // the reactor out of poll(2).
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;

    let (job_tx, job_rx) = mpsc::sync_channel::<(u64, HttpRequest)>(cfg.queue_depth.max(1));
    let job_rx = Arc::new(Mutex::new(job_rx));
    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));

    let mut workers = Vec::with_capacity(cfg.workers.max(1));
    for _ in 0..cfg.workers.max(1) {
        let job_rx = Arc::clone(&job_rx);
        let handler = Arc::clone(&handler);
        let completions = Arc::clone(&completions);
        let wake = wake_tx.try_clone()?;
        workers.push(std::thread::spawn(move || loop {
            let next = job_rx
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .recv();
            let Ok((conn_id, request)) = next else {
                break; // reactor gone: queue drained, pool winds down
            };
            let response =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&request))).ok();
            let push = |c: Completion| {
                completions
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(c);
                // A full (or closed) wake pipe is fine: the reactor
                // drains it whole and checks the completion queue on
                // every wakeup.
                let _ = (&wake).write(&[1]);
            };
            match response {
                Some(mut resp) if resp.stream.is_some() => {
                    // Streamed response: this worker stays on it, pulling
                    // body chunks and pushing them through a bounded
                    // channel; the reactor owns the socket and frames
                    // them. The worker is pinned for the stream's
                    // lifetime — the price of never materializing.
                    let mut body = resp.stream.take().expect("checked is_some");
                    let (tx, rx) = mpsc::sync_channel::<StreamMsg>(STREAM_CHANNEL_DEPTH);
                    push(Completion::StreamStart {
                        id: conn_id,
                        status: resp.status,
                        content_type: resp.content_type.clone(),
                        rx,
                        cancel: Arc::clone(body.cancel_flag()),
                    });
                    loop {
                        // Flipped by the reactor on peer disconnect; the
                        // producer's own pipeline also observes it (via
                        // its CancelToken) and aborts between rows.
                        if body.cancel_flag().load(Ordering::SeqCst) {
                            break;
                        }
                        match body.pull() {
                            Ok(Some(chunk)) => {
                                if chunk.is_empty() {
                                    continue;
                                }
                                // A dropped receiver = the connection
                                // died; stop producing.
                                if tx.send(StreamMsg::Chunk(chunk)).is_err() {
                                    break;
                                }
                                let _ = (&wake).write(&[1]);
                            }
                            Ok(None) => {
                                let _ = tx.send(StreamMsg::End { clean: true });
                                let _ = (&wake).write(&[1]);
                                break;
                            }
                            Err(_) => {
                                let _ = tx.send(StreamMsg::End { clean: false });
                                let _ = (&wake).write(&[1]);
                                break;
                            }
                        }
                    }
                }
                other => push(Completion::Response(conn_id, other)),
            }
        }));
    }

    let reactor = Reactor {
        listener,
        cfg,
        metrics: Arc::clone(&metrics),
        stop: Arc::clone(&stop),
        wake_rx,
        job_tx,
        completions,
        conns: HashMap::new(),
        next_id: 1,
    };
    let reactor_thread = std::thread::spawn(move || reactor.run());

    let waker = wake_tx;
    Ok(ServerHandle::from_parts(
        local,
        stop,
        reactor_thread,
        workers,
        metrics,
        Some(Box::new(move || {
            let _ = (&waker).write(&[1]);
        })),
    ))
}

struct Reactor {
    listener: TcpListener,
    cfg: ServerConfig,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    wake_rx: UnixStream,
    job_tx: mpsc::SyncSender<(u64, HttpRequest)>,
    completions: Arc<Mutex<Vec<Completion>>>,
    conns: HashMap<u64, Conn>,
    next_id: u64,
}

/// What a poll slot refers to.
enum Token {
    Wake,
    Listener,
    Conn(u64),
}

impl Reactor {
    fn run(mut self) {
        let mut fds: Vec<PollFd> = Vec::new();
        let mut tokens: Vec<Token> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            fds.clear();
            tokens.clear();
            fds.push(PollFd {
                fd: self.wake_rx.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            tokens.push(Token::Wake);
            fds.push(PollFd {
                fd: self.listener.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            tokens.push(Token::Listener);
            for (&id, conn) in &self.conns {
                let mut events = 0;
                if conn.wants_read() {
                    events |= POLLIN;
                }
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                // events == 0 (request in flight, nothing to write) still
                // reports POLLERR/POLLHUP, so a vanished peer is noticed.
                fds.push(PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                tokens.push(Token::Conn(id));
            }

            let timeout = self.next_deadline_ms();
            if poll_wait(&mut fds, timeout).is_err() {
                break; // unrecoverable poll failure; shut the transport
            }
            self.metrics.wakeups.fetch_add(1, Ordering::Relaxed);
            if self.stop.load(Ordering::SeqCst) {
                break;
            }

            let now = Instant::now();
            // Connection events (including peers that just closed) are
            // processed before the listener, so budget freed by a FIN in
            // this same readiness batch is available to admissions.
            let mut accept_pending = false;
            for (slot, token) in fds.iter().zip(&tokens) {
                match token {
                    Token::Wake => {
                        if slot.revents & POLLIN != 0 {
                            self.drain_wake_pipe();
                        }
                    }
                    Token::Listener => accept_pending = slot.revents & POLLIN != 0,
                    Token::Conn(id) => self.service_conn(*id, slot.revents, now),
                }
            }
            // Completions are drained every wakeup, whatever woke us:
            // a missed wake byte can never strand a finished response.
            self.apply_completions(now);
            // Streaming workers signal new chunks with a wake byte only;
            // pump every live stream on every wakeup so none strands.
            self.pump_streams(now);
            if accept_pending {
                self.accept_ready(now);
            }
            self.expire_deadlines(now);
        }
        for (_, conn) in self.conns.drain() {
            conn.shutdown();
        }
        self.metrics.open.store(0, Ordering::SeqCst);
        // Dropping `job_tx` lets the workers drain the queue and exit.
    }

    /// Milliseconds until the soonest connection deadline (`None` = no
    /// deadline pending; sleep until an fd is ready or a wake byte).
    fn next_deadline_ms(&self) -> Option<i32> {
        let now = Instant::now();
        let mut soonest: Option<Instant> = None;
        let mut fold = |d: Option<Instant>| {
            if let Some(d) = d {
                soonest = Some(soonest.map_or(d, |s| s.min(d)));
            }
        };
        for conn in self.conns.values() {
            fold(conn.write_deadline);
            match conn.state {
                ConnState::Reading => {
                    if conn.buf.is_empty() && conn.read_deadline.is_none() {
                        fold(Some(conn.idle_since + self.cfg.idle_timeout));
                    } else {
                        fold(conn.read_deadline);
                    }
                }
                // Streaming has no idle clock: the write deadline above
                // already bounds a peer that stops draining chunks.
                ConnState::InFlight { .. } | ConnState::Streaming { .. } | ConnState::Closing => {}
            }
        }
        soonest.map(|s| {
            let ms = s.saturating_duration_since(now).as_millis() as i64;
            // +1 rounds up so we never spin on a not-quite-due deadline.
            (ms + 1).min(i32::MAX as i64) as i32
        })
    }

    fn drain_wake_pipe(&mut self) {
        let mut sink = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
    }

    fn accept_ready(&mut self, now: Instant) {
        let budget = self.cfg.budget();
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                    if self.conns.len() >= budget {
                        // Shedding writes a tiny fixed response; do it
                        // blocking (with a short timeout) for simplicity.
                        let _ = stream.set_nonblocking(false);
                        shed(stream, self.cfg.retry_after_secs, &self.metrics);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let id = self.next_id;
                    self.next_id += 1;
                    self.conns.insert(id, Conn::new(stream, now));
                    self.metrics.open.fetch_add(1, Ordering::SeqCst);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                // Transient accept failures (ECONNABORTED, EMFILE):
                // leave the listener registered and retry next wakeup.
                Err(_) => break,
            }
        }
    }

    /// React to poll events on one connection.
    fn service_conn(&mut self, id: u64, revents: c_short, now: Instant) {
        if revents == 0 {
            return;
        }
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let streaming = conn.body_stream.is_some();
        // During a stream, POLLHUP means the peer is gone: further
        // chunks are wasted work, so abort immediately (close() flips
        // the producer's cancel flag) instead of waiting for a write to
        // fail.
        if revents & (POLLERR | POLLNVAL) != 0 || (streaming && revents & POLLHUP != 0) {
            self.close(id);
            return;
        }
        if revents & POLLOUT != 0 && conn.wants_write() {
            match conn.try_write() {
                Ok(true) => {
                    if conn.state == ConnState::Closing {
                        self.close(id);
                        return;
                    }
                    if conn.body_stream.is_some() {
                        // Output drained mid-stream: refill from the
                        // producer's channel.
                        self.pump_stream(id, now);
                        return;
                    }
                    // Response flushed on a persistent connection: a
                    // pipelined successor may already be buffered.
                    self.process_input(id, now);
                    return;
                }
                Ok(false) => {}
                Err(_) => {
                    self.close(id);
                    return;
                }
            }
        }
        if revents & POLLIN != 0 && conn.wants_read() {
            match conn.read_available() {
                Ok(peer_closed) => {
                    if peer_closed {
                        conn.peer_eof = true;
                    }
                    if peer_closed && streaming {
                        // The peer's FIN mid-stream is treated as a
                        // disconnect: the response in progress has no
                        // reader, so cancel the plan and close. (A
                        // half-closing streaming client loses the rest
                        // of its response; ordinary clients keep the
                        // socket open until the terminal chunk.)
                        self.close(id);
                        return;
                    }
                    // A half-closing peer may still be owed response
                    // bytes (`wants_write`); only a FIN with nothing
                    // buffered in either direction is a clean close.
                    if peer_closed && conn.buf.is_empty() && !conn.wants_write() {
                        self.close(id);
                        return;
                    }
                    self.process_input(id, now);
                }
                Err(_) => self.close(id),
            }
        } else if revents & POLLHUP != 0 && !conn.wants_write() {
            // Peer hung up while we owe it nothing (e.g. mid-handler):
            // drop now; the eventual completion is discarded harmlessly.
            self.close(id);
        }
    }

    /// Parse and dispatch as many buffered requests as the connection's
    /// state allows, then push any queued response bytes.
    fn process_input(&mut self, id: u64, now: Instant) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.state != ConnState::Reading {
                break;
            }
            match try_parse_request(&conn.buf, self.cfg.max_body_bytes) {
                Ok(ParseStatus::Incomplete) => {
                    if conn.peer_eof {
                        // No more bytes will ever arrive: whatever did
                        // not parse into a request never will. Flush
                        // anything still owed, then close.
                        conn.state = ConnState::Closing;
                        break;
                    }
                    if conn.buf.is_empty() {
                        conn.read_deadline = None;
                        conn.idle_since = now;
                    } else if conn.read_deadline.is_none() {
                        conn.read_deadline = Some(now + self.cfg.read_timeout);
                    }
                    break;
                }
                Ok(ParseStatus::Complete(request, consumed)) => {
                    conn.buf.drain(..consumed);
                    conn.read_deadline = None;
                    // Persistence if this request is served (it consumes
                    // a cap slot) vs shed (it does not).
                    let keep_served = connection_persists(&request, &self.cfg, conn.served + 1);
                    let keep_shed = connection_persists(&request, &self.cfg, conn.served);
                    match self.job_tx.try_send((id, *request)) {
                        Ok(()) => {
                            conn.served += 1;
                            conn.state = ConnState::InFlight { keep: keep_served };
                            self.metrics.requests.fetch_add(1, Ordering::Relaxed);
                            if conn.served > 1 {
                                self.metrics
                                    .keepalive_reuses
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            break; // parked until the response lands
                        }
                        Err(mpsc::TrySendError::Full(_)) => {
                            // Work queue saturated: shed *this request*,
                            // keep the connection when the peer would.
                            // Shed work is counted in `shed` only — not
                            // in `requests`, not against the
                            // per-connection request cap.
                            self.metrics.shed.fetch_add(1, Ordering::Relaxed);
                            conn.state = if keep_shed {
                                ConnState::Reading
                            } else {
                                ConnState::Closing
                            };
                            conn.queue_response(
                                &HttpResponse::unavailable(self.cfg.retry_after_secs),
                                keep_shed,
                                now,
                            );
                            if !keep_shed {
                                break;
                            }
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => {
                            conn.state = ConnState::Closing;
                            break;
                        }
                    }
                }
                Err(e) => {
                    let (response, counter) = match e {
                        RequestError::Malformed(m) => (
                            HttpResponse::error(400, &format!("bad request: {m}")),
                            &self.metrics.malformed,
                        ),
                        RequestError::HeadTooLarge(m) => {
                            (HttpResponse::error(431, &m), &self.metrics.malformed)
                        }
                        RequestError::TooLarge(m) => {
                            (HttpResponse::error(413, &m), &self.metrics.malformed)
                        }
                        RequestError::Timeout | RequestError::Io => {
                            // Not produced by the pure parser; treat as a
                            // framing failure if it ever appears.
                            (
                                HttpResponse::error(400, "bad request"),
                                &self.metrics.malformed,
                            )
                        }
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    conn.state = ConnState::Closing;
                    conn.queue_response(&response, false, now);
                    break;
                }
            }
        }
        self.flush(id);
    }

    /// Hand finished responses back to their connections.
    fn apply_completions(&mut self, now: Instant) {
        let done: Vec<Completion> = std::mem::take(
            &mut *self
                .completions
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for completion in done {
            match completion {
                Completion::Response(id, response) => self.apply_response(id, response, now),
                Completion::StreamStart {
                    id,
                    status,
                    content_type,
                    rx,
                    cancel,
                } => self.start_stream(id, status, &content_type, rx, cancel, now),
            }
        }
    }

    fn apply_response(&mut self, id: u64, response: Option<HttpResponse>, now: Instant) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return; // connection died while the handler ran
        };
        let ConnState::InFlight { keep } = conn.state else {
            return;
        };
        match response {
            Some(resp) => {
                conn.state = if keep {
                    ConnState::Reading
                } else {
                    ConnState::Closing
                };
                conn.idle_since = now;
                conn.queue_response(&resp, keep, now);
                if keep {
                    // Write, then look for a pipelined successor.
                    self.process_input(id, now);
                    return;
                }
            }
            None => {
                // Handler panicked: contained to this connection.
                conn.state = ConnState::Closing;
                conn.queue_response(&HttpResponse::error(500, "handler panicked"), false, now);
            }
        }
        self.flush(id);
    }

    /// A worker began a streamed response: write the chunked head and
    /// switch the connection to [`ConnState::Streaming`].
    fn start_stream(
        &mut self,
        id: u64,
        status: u16,
        content_type: &str,
        rx: mpsc::Receiver<StreamMsg>,
        cancel: Arc<AtomicBool>,
        now: Instant,
    ) {
        let Some(conn) = self.conns.get_mut(&id) else {
            // Connection died while the handler ran: aborting the
            // producer (flag + dropped receiver) is all that is left.
            cancel.store(true, Ordering::SeqCst);
            return;
        };
        let ConnState::InFlight { keep } = conn.state else {
            cancel.store(true, Ordering::SeqCst);
            return;
        };
        self.metrics.streams.fetch_add(1, Ordering::Relaxed);
        let head = HttpResponse {
            status,
            ..HttpResponse::ok(content_type, Vec::new())
        };
        conn.state = ConnState::Streaming { keep };
        conn.body_stream = Some(StreamHandle { rx, cancel });
        conn.queue_bytes(&encode_stream_head(&head, keep), now);
        self.pump_stream(id, now);
    }

    /// Pump every live stream: move producer chunks into connection
    /// output buffers (bounded by the watermark) and flush.
    fn pump_streams(&mut self, now: Instant) {
        let streaming: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.body_stream.is_some())
            .map(|(&id, _)| id)
            .collect();
        for id in streaming {
            self.pump_stream(id, now);
        }
    }

    /// Refill one connection's output from its stream channel and flush.
    /// Ends the stream on an `End` message: terminal chunk + keep-alive
    /// resume when clean, abort (no terminal chunk, close) otherwise.
    fn pump_stream(&mut self, id: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let mut resume_keepalive = false;
        while let Some(handle) = &conn.body_stream {
            if conn.pending_out() >= STREAM_OUT_WATERMARK {
                break; // backpressure: the producer blocks on its channel
            }
            match handle.rx.try_recv() {
                Ok(StreamMsg::Chunk(bytes)) => {
                    conn.queue_bytes(&encode_chunk(&bytes), now);
                }
                Ok(StreamMsg::End { clean: true }) => {
                    conn.queue_bytes(CHUNK_TERMINATOR, now);
                    let keep = matches!(conn.state, ConnState::Streaming { keep: true });
                    conn.body_stream = None;
                    conn.state = if keep {
                        ConnState::Reading
                    } else {
                        ConnState::Closing
                    };
                    conn.idle_since = now;
                    resume_keepalive = keep;
                    break;
                }
                Ok(StreamMsg::End { clean: false }) => {
                    // Producer failed mid-stream: close WITHOUT the
                    // terminal chunk (already-queued chunks may still
                    // drain) so the peer sees a truncated stream.
                    self.metrics.streams_aborted.fetch_add(1, Ordering::Relaxed);
                    conn.body_stream = None;
                    conn.state = ConnState::Closing;
                    break;
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    // Worker vanished without an End (poisoned/killed):
                    // indistinguishable from a failure.
                    self.metrics.streams_aborted.fetch_add(1, Ordering::Relaxed);
                    conn.body_stream = None;
                    conn.state = ConnState::Closing;
                    break;
                }
            }
        }
        if resume_keepalive {
            // The stream ended cleanly on a persistent connection: a
            // pipelined successor may already be buffered.
            self.process_input(id, now);
        } else {
            self.flush(id);
        }
    }

    /// Enforce read/idle/write deadlines.
    fn expire_deadlines(&mut self, now: Instant) {
        let mut stalled = Vec::new();
        let mut dead = Vec::new();
        for (&id, conn) in &self.conns {
            if conn.write_deadline.is_some_and(|d| now >= d) {
                dead.push(id); // peer stopped reading its response
            } else if conn.state == ConnState::Reading {
                if conn.read_deadline.is_some_and(|d| now >= d) {
                    stalled.push(id); // mid-request overrun: 408
                } else if conn.buf.is_empty()
                    && conn.read_deadline.is_none()
                    && !conn.wants_write()
                    && now >= conn.idle_since + self.cfg.idle_timeout
                {
                    dead.push(id); // idle keep-alive: silent close
                }
            }
        }
        for id in dead {
            self.close(id);
        }
        for id in stalled {
            self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.state = ConnState::Closing;
                conn.read_deadline = None;
                conn.queue_response(
                    &HttpResponse::error(408, "request not completed in time"),
                    false,
                    now,
                );
                self.flush(id);
            }
        }
    }

    /// Opportunistically drain a connection's output; close when done if
    /// the state machine says so.
    fn flush(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if !conn.wants_write() {
            if conn.state == ConnState::Closing {
                self.close(id);
            }
            return;
        }
        match conn.try_write() {
            Ok(true) if conn.state == ConnState::Closing => self.close(id),
            Ok(_) => {} // drained or would-block; poll handles the rest
            Err(_) => self.close(id),
        }
    }

    fn close(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            if let Some(handle) = &conn.body_stream {
                // A stream handle still present means the response never
                // finished: tell the producer its reader is gone. The
                // dropped receiver below unblocks a worker parked in
                // `send`, and the flag stops the plan at its next check.
                handle.cancel.store(true, Ordering::SeqCst);
                self.metrics.streams_aborted.fetch_add(1, Ordering::Relaxed);
            }
            conn.shutdown();
            self.metrics.open.fetch_sub(1, Ordering::SeqCst);
        }
    }
}
