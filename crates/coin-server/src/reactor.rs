//! The event-driven reactor transport (Unix only), sharded across N
//! event-loop threads.
//!
//! A dedicated **acceptor** thread owns the nonblocking listener. Every
//! accepted connection is either shed (`503 + Retry-After` when the
//! fleet is over budget) or handed off **round-robin** to one of N
//! **shard** threads: connection `i` lands on shard `i % N`, so the
//! fleet stays balanced and tests can place connections deterministically.
//! Each shard owns its slice of the fleet outright — sockets never
//! migrate — and multiplexes it with a [`crate::poller::Poller`]
//! (`epoll(7)` with a persistent interest set on Linux, portable
//! `poll(2)` elsewhere; see [`crate::http::ReactorBackend`]). Per shard,
//! the loop:
//!
//! 1. **admits** connections the acceptor queued on its intake,
//! 2. **reads** whatever bytes are ready and runs the incremental parser
//!    ([`crate::conn`]) until a *complete* request emerges,
//! 3. **dispatches** complete requests to the bounded worker queue
//!    (shedding overflow with `503` — the connection stays open),
//! 4. **writes** finished responses back as sockets accept them, and
//! 5. **reaps** deadline violations: stalled requests (`408`), idle
//!    keep-alive connections (silent close), and peers that stop reading
//!    their responses.
//!
//! Workers never see a socket: they take [`Job`]s (shard, connection id,
//! request), run the handler (panics contained to a `500`), and hand
//! the encoded response back through the owning shard's completion
//! queue, waking that shard through its self-wake socket pair (one pipe
//! per shard, so a completion never wakes an uninvolved shard). Idle or
//! slow connections therefore cost no thread, which is what decouples
//! the open-connection count from the pool size — and under epoll they
//! cost no per-wakeup syscall traffic either, which is what decouples
//! wakeup cost from fleet size (the property the `c10k` bench gates).

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use crate::conn::{try_parse_request, Conn, ConnState, ParseStatus, StreamHandle, StreamMsg};
use crate::http::{
    connection_persists, encode_chunk, encode_stream_head, shed, Handler, HttpError, HttpRequest,
    HttpResponse, ReactorBackend, RequestError, ServerConfig, ServerHandle, ServerMetrics,
    CHUNK_TERMINATOR,
};
use crate::poller::{poll_wait, Backend, Event, PollFd, Poller, POLLIN, WAKE_TOKEN};

/// How many reactor shards a config resolves to (`0` = one per
/// available core, capped at 8 — more shards than cores buys nothing).
fn resolved_shards(cfg: &ServerConfig) -> usize {
    if cfg.reactor_shards != 0 {
        return cfg.reactor_shards;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, 8)
}

/// Map the user-facing backend choice onto what this host can run.
fn resolved_backend(cfg: &ServerConfig) -> Backend {
    match cfg.reactor_backend {
        #[cfg(target_os = "linux")]
        ReactorBackend::Auto | ReactorBackend::Epoll => Backend::Epoll,
        // Hosts without epoll run the identical contract on poll(2).
        #[cfg(not(target_os = "linux"))]
        ReactorBackend::Auto | ReactorBackend::Epoll => Backend::Poll,
        ReactorBackend::Poll => Backend::Poll,
    }
}

/// One parsed request in flight from a shard to the worker pool.
struct Job {
    /// The shard that owns the connection (routes the completion back).
    shard: usize,
    /// Shard-local connection id.
    conn: u64,
    request: HttpRequest,
}

/// What a worker hands back through a shard's completion queue.
enum Completion {
    /// A buffered response for this connection (`None` = the handler
    /// panicked; the shard answers `500` and closes).
    Response(u64, Option<HttpResponse>),
    /// The handler returned a streaming body: the worker is now pumping
    /// chunks through `rx` and the shard should write the chunked head
    /// and start framing. `cancel` is the producer's abort flag — the
    /// shard flips it when the peer disconnects mid-stream.
    StreamStart {
        id: u64,
        status: u16,
        content_type: String,
        rx: mpsc::Receiver<StreamMsg>,
        cancel: Arc<AtomicBool>,
    },
}

/// Bound on body chunks in flight between a producing worker and the
/// owning shard: a worker outrunning the socket blocks on `send`, which
/// is the backpressure that keeps streamed responses bounded-memory.
const STREAM_CHANNEL_DEPTH: usize = 2;

/// Stop refilling a connection's output buffer from its stream channel
/// once this many bytes are already pending on the socket.
const STREAM_OUT_WATERMARK: usize = 256 * 1024;

/// Start the sharded reactor transport on an already-bound nonblocking
/// listener.
pub(crate) fn serve(
    listener: TcpListener,
    cfg: ServerConfig,
    handler: Handler,
) -> Result<ServerHandle, HttpError> {
    let local = listener.local_addr()?;
    let nshards = resolved_shards(&cfg);
    let backend = resolved_backend(&cfg);
    let stop = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(ServerMetrics::with_shards(nshards));

    // Per-shard plumbing: a self-wake pipe (workers, the acceptor, and
    // the handle write one byte to kick the shard out of its wait), an
    // intake queue the acceptor pushes accepted sockets onto, and a
    // completion queue the workers push finished responses onto.
    let mut shard_wake_rx = Vec::with_capacity(nshards);
    let mut shard_wake_tx = Vec::with_capacity(nshards);
    for _ in 0..nshards {
        let (rx, tx) = UnixStream::pair()?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        shard_wake_rx.push(rx);
        shard_wake_tx.push(tx);
    }
    let intakes: Vec<Arc<Mutex<Vec<TcpStream>>>> = (0..nshards)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    let completions: Vec<Arc<Mutex<Vec<Completion>>>> = (0..nshards)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();

    let (accept_wake_rx, accept_wake_tx) = UnixStream::pair()?;
    accept_wake_rx.set_nonblocking(true)?;
    accept_wake_tx.set_nonblocking(true)?;

    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(cfg.queue_depth.max(1));
    let job_rx = Arc::new(Mutex::new(job_rx));

    let mut worker_threads = Vec::with_capacity(cfg.workers.max(1));
    for _ in 0..cfg.workers.max(1) {
        let job_rx = Arc::clone(&job_rx);
        let handler = Arc::clone(&handler);
        let completions: Vec<_> = completions.iter().map(Arc::clone).collect();
        let wakes = shard_wake_tx
            .iter()
            .map(UnixStream::try_clone)
            .collect::<std::io::Result<Vec<_>>>()?;
        worker_threads.push(std::thread::spawn(move || loop {
            let next = job_rx
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .recv();
            let Ok(Job {
                shard,
                conn: conn_id,
                request,
            }) = next
            else {
                break; // shards gone: queue drained, pool winds down
            };
            let response =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&request))).ok();
            let push = |c: Completion| {
                completions[shard]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(c);
                // A full (or closed) wake pipe is fine: the shard drains
                // it whole and checks the completion queue on every
                // wakeup.
                let _ = (&wakes[shard]).write(&[1]);
            };
            match response {
                Some(mut resp) if resp.stream.is_some() => {
                    // Streamed response: this worker stays on it, pulling
                    // body chunks and pushing them through a bounded
                    // channel; the owning shard owns the socket and
                    // frames them. The worker is pinned for the stream's
                    // lifetime — the price of never materializing.
                    let mut body = resp.stream.take().expect("checked is_some");
                    let (tx, rx) = mpsc::sync_channel::<StreamMsg>(STREAM_CHANNEL_DEPTH);
                    push(Completion::StreamStart {
                        id: conn_id,
                        status: resp.status,
                        content_type: resp.content_type.clone(),
                        rx,
                        cancel: Arc::clone(body.cancel_flag()),
                    });
                    loop {
                        // Flipped by the shard on peer disconnect; the
                        // producer's own pipeline also observes it (via
                        // its CancelToken) and aborts between rows.
                        if body.cancel_flag().load(Ordering::SeqCst) {
                            break;
                        }
                        match body.pull() {
                            Ok(Some(chunk)) => {
                                if chunk.is_empty() {
                                    continue;
                                }
                                // A dropped receiver = the connection
                                // died; stop producing.
                                if tx.send(StreamMsg::Chunk(chunk)).is_err() {
                                    break;
                                }
                                let _ = (&wakes[shard]).write(&[1]);
                            }
                            Ok(None) => {
                                let _ = tx.send(StreamMsg::End { clean: true });
                                let _ = (&wakes[shard]).write(&[1]);
                                break;
                            }
                            Err(_) => {
                                let _ = tx.send(StreamMsg::End { clean: false });
                                let _ = (&wakes[shard]).write(&[1]);
                                break;
                            }
                        }
                    }
                }
                other => push(Completion::Response(conn_id, other)),
            }
        }));
    }

    let mut shard_threads = Vec::with_capacity(nshards);
    for (idx, wake_rx) in shard_wake_rx.into_iter().enumerate() {
        // Created here (not in the thread) so backend setup failures
        // surface as a serve() error instead of a dead shard.
        let poller = Poller::new(backend)?;
        let shard = Shard {
            idx,
            cfg: cfg.clone(),
            metrics: Arc::clone(&metrics),
            stop: Arc::clone(&stop),
            wake_rx,
            intake: Arc::clone(&intakes[idx]),
            job_tx: job_tx.clone(),
            completions: Arc::clone(&completions[idx]),
            poller,
            conns: HashMap::new(),
            next_id: 1,
            dirty: Vec::new(),
        };
        shard_threads.push(std::thread::spawn(move || shard.run()));
    }
    // Only the shards hold job senders now: when they exit, the worker
    // pool drains the queue and winds down.
    drop(job_tx);

    let acceptor = Acceptor {
        listener,
        cfg,
        metrics: Arc::clone(&metrics),
        stop: Arc::clone(&stop),
        wake_rx: accept_wake_rx,
        shards: intakes
            .into_iter()
            .zip(
                shard_wake_tx
                    .iter()
                    .map(UnixStream::try_clone)
                    .collect::<std::io::Result<Vec<_>>>()?,
            )
            .map(|(queue, wake)| ShardIntake { queue, wake })
            .collect(),
        next_shard: 0,
    };
    let accept_thread = std::thread::spawn(move || acceptor.run());

    // Shard threads precede worker threads so shutdown joins them (and
    // drops their job senders) before waiting on the pool.
    let mut transport_threads = shard_threads;
    transport_threads.extend(worker_threads);

    Ok(ServerHandle::from_parts(
        local,
        stop,
        accept_thread,
        transport_threads,
        metrics,
        Some(Box::new(move || {
            let _ = (&accept_wake_tx).write(&[1]);
            for wake in &shard_wake_tx {
                let _ = (&*wake).write(&[1]);
            }
        })),
    ))
}

/// The acceptor's handle to one shard: where to queue a socket and how
/// to wake the shard so it notices.
struct ShardIntake {
    queue: Arc<Mutex<Vec<TcpStream>>>,
    wake: UnixStream,
}

/// The accept loop: polls the listener (and its own wake pipe), sheds
/// over-budget connections, and deals admitted sockets round-robin.
struct Acceptor {
    listener: TcpListener,
    cfg: ServerConfig,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    wake_rx: UnixStream,
    shards: Vec<ShardIntake>,
    next_shard: usize,
}

impl Acceptor {
    fn run(mut self) {
        let mut fds = [
            PollFd {
                fd: self.wake_rx.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            },
            PollFd {
                fd: self.listener.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            },
        ];
        while !self.stop.load(Ordering::SeqCst) {
            fds[0].revents = 0;
            fds[1].revents = 0;
            if poll_wait(&mut fds, None).is_err() {
                break;
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            if fds[0].revents & POLLIN != 0 {
                let mut sink = [0u8; 64];
                while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
            }
            if fds[1].revents & POLLIN != 0 {
                self.accept_ready();
            }
        }
    }

    fn accept_ready(&mut self) {
        let budget = self.cfg.budget();
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                    // The global open gauge is the budget's source of
                    // truth: shards decrement it as they close, so
                    // freed budget is visible here as soon as the
                    // owning shard processes the close. (A connect that
                    // races a still-unprocessed close may be shed; the
                    // budget is a bound, not a reservation system.)
                    if self.metrics.open.load(Ordering::SeqCst) as usize >= budget {
                        // Shedding writes a tiny fixed response; do it
                        // blocking (with a short timeout) for simplicity.
                        let _ = stream.set_nonblocking(false);
                        shed(stream, self.cfg.retry_after_secs, &self.metrics);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Round-robin over *admitted* connections only, so
                    // placement stays deterministic: connection i lands
                    // on shard i % N regardless of shed traffic.
                    let shard = self.next_shard;
                    self.next_shard = (self.next_shard + 1) % self.shards.len();
                    self.metrics.open.fetch_add(1, Ordering::SeqCst);
                    self.metrics.shards[shard]
                        .open
                        .fetch_add(1, Ordering::SeqCst);
                    let target = &self.shards[shard];
                    target
                        .queue
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(stream);
                    let _ = (&target.wake).write(&[1]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                // Transient accept failures (ECONNABORTED, EMFILE):
                // leave the listener registered and retry next wakeup.
                Err(_) => break,
            }
        }
    }
}

/// One reactor shard: exclusive owner of its slice of the connection
/// fleet, its poller, and its wake pipe.
struct Shard {
    idx: usize,
    cfg: ServerConfig,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    wake_rx: UnixStream,
    /// Sockets the acceptor assigned to this shard, not yet admitted
    /// into `conns`.
    intake: Arc<Mutex<Vec<TcpStream>>>,
    job_tx: mpsc::SyncSender<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    /// Connection ids whose interest may have changed since the last
    /// [`Shard::sync_interest`]. Duplicates are fine (an unchanged
    /// interest re-submission is a poller no-op); ids of connections
    /// closed in the meantime are skipped.
    dirty: Vec<u64>,
}

impl Shard {
    fn run(mut self) {
        if self
            .poller
            .register(WAKE_TOKEN, self.wake_rx.as_raw_fd(), true, false)
            .is_err()
        {
            self.teardown();
            return;
        }
        let mut events: Vec<Event> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            let timeout = self.next_deadline_ms();
            if self.poller.wait(timeout, &mut events).is_err() {
                break; // unrecoverable backend failure; shut the shard
            }
            self.metrics.wakeups.fetch_add(1, Ordering::Relaxed);
            let per_shard = &self.metrics.shards[self.idx];
            per_shard.wakeups.fetch_add(1, Ordering::Relaxed);
            per_shard
                .interest_ops
                .store(self.poller.interest_ops(), Ordering::Relaxed);
            if self.stop.load(Ordering::SeqCst) {
                break;
            }

            let now = Instant::now();
            for ev in events.drain(..) {
                if ev.token == WAKE_TOKEN {
                    if ev.readable {
                        self.drain_wake_pipe();
                    }
                    continue;
                }
                self.service_conn(ev, now);
            }
            // Completions are drained every wakeup, whatever woke us:
            // a missed wake byte can never strand a finished response.
            self.apply_completions(now);
            // Streaming workers signal new chunks with a wake byte only;
            // pump every live stream on every wakeup so none strands.
            self.pump_streams(now);
            self.admit_intake(now);
            self.expire_deadlines(now);
            self.sync_interest();
        }
        self.teardown();
    }

    /// Drain open connections and hand their budget back, one by one —
    /// sibling shards may still be mid-drain, so no global reset.
    fn teardown(&mut self) {
        for (_, conn) in self.conns.drain() {
            if let Some(handle) = &conn.body_stream {
                // Unpin the producing worker: flag the plan cancelled;
                // the receiver drop below unblocks a parked `send`.
                handle.cancel.store(true, Ordering::SeqCst);
            }
            conn.shutdown();
            self.metrics.open.fetch_sub(1, Ordering::SeqCst);
            self.metrics.shards[self.idx]
                .open
                .fetch_sub(1, Ordering::SeqCst);
        }
        // Sockets handed off but never admitted still hold budget the
        // acceptor charged at handoff: release them too.
        let stranded: Vec<TcpStream> = std::mem::take(
            &mut *self
                .intake
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for stream in stranded {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            self.metrics.open.fetch_sub(1, Ordering::SeqCst);
            self.metrics.shards[self.idx]
                .open
                .fetch_sub(1, Ordering::SeqCst);
        }
        // Dropping `job_tx` (with the other shards) lets the worker
        // pool drain the queue and exit.
    }

    /// Milliseconds until the soonest connection deadline (`None` = no
    /// deadline pending; sleep until an fd is ready or a wake byte).
    fn next_deadline_ms(&self) -> Option<i32> {
        let now = Instant::now();
        let mut soonest: Option<Instant> = None;
        let mut fold = |d: Option<Instant>| {
            if let Some(d) = d {
                soonest = Some(soonest.map_or(d, |s| s.min(d)));
            }
        };
        for conn in self.conns.values() {
            fold(conn.write_deadline);
            match conn.state {
                ConnState::Reading => {
                    if conn.buf.is_empty() && conn.read_deadline.is_none() {
                        fold(Some(conn.idle_since + self.cfg.idle_timeout));
                    } else {
                        fold(conn.read_deadline);
                    }
                }
                // Streaming has no idle clock: the write deadline above
                // already bounds a peer that stops draining chunks.
                ConnState::InFlight { .. } | ConnState::Streaming { .. } | ConnState::Closing => {}
            }
        }
        soonest.map(|s| {
            let ms = s.saturating_duration_since(now).as_millis() as i64;
            // +1 rounds up so we never spin on a not-quite-due deadline.
            (ms + 1).min(i32::MAX as i64) as i32
        })
    }

    fn drain_wake_pipe(&mut self) {
        let mut sink = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
    }

    /// Take ownership of sockets the acceptor queued for this shard.
    fn admit_intake(&mut self, now: Instant) {
        let fresh: Vec<TcpStream> = std::mem::take(
            &mut *self
                .intake
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for stream in fresh {
            let id = self.next_id;
            self.next_id += 1;
            let conn = Conn::new(stream, now);
            let (read, write) = conn.interest();
            if self
                .poller
                .register(id, conn.stream.as_raw_fd(), read, write)
                .is_err()
            {
                // Registration failure (fd pressure): a failed
                // admission, not a poisoned shard.
                conn.shutdown();
                self.metrics.open.fetch_sub(1, Ordering::SeqCst);
                self.metrics.shards[self.idx]
                    .open
                    .fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            self.conns.insert(id, conn);
        }
    }

    /// Re-submit the interest of every connection touched this
    /// iteration. Under epoll only actual changes cost a syscall; under
    /// poll this just updates the user-space slot table.
    fn sync_interest(&mut self) {
        while let Some(id) = self.dirty.pop() {
            if let Some(conn) = self.conns.get(&id) {
                let (read, write) = conn.interest();
                self.poller.set_interest(id, read, write);
            }
        }
    }

    /// React to readiness events on one connection.
    fn service_conn(&mut self, ev: Event, now: Instant) {
        let id = ev.token;
        self.dirty.push(id);
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let streaming = conn.body_stream.is_some();
        // During a stream, a hangup means the peer is gone: further
        // chunks are wasted work, so abort immediately (close() flips
        // the producer's cancel flag) instead of waiting for a write to
        // fail.
        if ev.error || (streaming && ev.hangup) {
            self.close(id);
            return;
        }
        if ev.writable && conn.wants_write() {
            match conn.try_write() {
                Ok(true) => {
                    if conn.state == ConnState::Closing {
                        self.close(id);
                        return;
                    }
                    if conn.body_stream.is_some() {
                        // Output drained mid-stream: refill from the
                        // producer's channel.
                        self.pump_stream(id, now);
                        return;
                    }
                    // Response flushed on a persistent connection: a
                    // pipelined successor may already be buffered.
                    self.process_input(id, now);
                    return;
                }
                Ok(false) => {}
                Err(_) => {
                    self.close(id);
                    return;
                }
            }
        }
        if ev.readable && conn.wants_read() {
            match conn.read_available() {
                Ok(peer_closed) => {
                    if peer_closed {
                        conn.peer_eof = true;
                    }
                    if peer_closed && streaming {
                        // The peer's FIN mid-stream is treated as a
                        // disconnect: the response in progress has no
                        // reader, so cancel the plan and close. (A
                        // half-closing streaming client loses the rest
                        // of its response; ordinary clients keep the
                        // socket open until the terminal chunk.)
                        self.close(id);
                        return;
                    }
                    // A half-closing peer may still be owed response
                    // bytes (`wants_write`); only a FIN with nothing
                    // buffered in either direction is a clean close.
                    if peer_closed && conn.buf.is_empty() && !conn.wants_write() {
                        self.close(id);
                        return;
                    }
                    self.process_input(id, now);
                }
                Err(_) => self.close(id),
            }
        } else if ev.hangup && !conn.wants_write() {
            // Peer hung up while we owe it nothing (e.g. mid-handler):
            // drop now; the eventual completion is discarded harmlessly.
            self.close(id);
        }
    }

    /// Parse and dispatch as many buffered requests as the connection's
    /// state allows, then push any queued response bytes.
    fn process_input(&mut self, id: u64, now: Instant) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.state != ConnState::Reading {
                break;
            }
            match try_parse_request(&conn.buf, self.cfg.max_body_bytes) {
                Ok(ParseStatus::Incomplete) => {
                    if conn.peer_eof {
                        // No more bytes will ever arrive: whatever did
                        // not parse into a request never will. Flush
                        // anything still owed, then close.
                        conn.state = ConnState::Closing;
                        break;
                    }
                    if conn.buf.is_empty() {
                        conn.read_deadline = None;
                        conn.idle_since = now;
                    } else if conn.read_deadline.is_none() {
                        conn.read_deadline = Some(now + self.cfg.read_timeout);
                    }
                    break;
                }
                Ok(ParseStatus::Complete(request, consumed)) => {
                    conn.buf.drain(..consumed);
                    conn.read_deadline = None;
                    // Persistence if this request is served (it consumes
                    // a cap slot) vs shed (it does not).
                    let keep_served = connection_persists(&request, &self.cfg, conn.served + 1);
                    let keep_shed = connection_persists(&request, &self.cfg, conn.served);
                    let job = Job {
                        shard: self.idx,
                        conn: id,
                        request: *request,
                    };
                    match self.job_tx.try_send(job) {
                        Ok(()) => {
                            conn.served += 1;
                            conn.state = ConnState::InFlight { keep: keep_served };
                            self.metrics.requests.fetch_add(1, Ordering::Relaxed);
                            if conn.served > 1 {
                                self.metrics
                                    .keepalive_reuses
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            break; // parked until the response lands
                        }
                        Err(mpsc::TrySendError::Full(_)) => {
                            // Work queue saturated: shed *this request*,
                            // keep the connection when the peer would.
                            // Shed work is counted in `shed` only — not
                            // in `requests`, not against the
                            // per-connection request cap.
                            self.metrics.shed.fetch_add(1, Ordering::Relaxed);
                            conn.state = if keep_shed {
                                ConnState::Reading
                            } else {
                                ConnState::Closing
                            };
                            conn.queue_response(
                                &HttpResponse::unavailable(self.cfg.retry_after_secs),
                                keep_shed,
                                now,
                            );
                            if !keep_shed {
                                break;
                            }
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => {
                            conn.state = ConnState::Closing;
                            break;
                        }
                    }
                }
                Err(e) => {
                    let (response, counter) = match e {
                        RequestError::Malformed(m) => (
                            HttpResponse::error(400, &format!("bad request: {m}")),
                            &self.metrics.malformed,
                        ),
                        RequestError::HeadTooLarge(m) => {
                            (HttpResponse::error(431, &m), &self.metrics.malformed)
                        }
                        RequestError::TooLarge(m) => {
                            (HttpResponse::error(413, &m), &self.metrics.malformed)
                        }
                        RequestError::Timeout | RequestError::Io => {
                            // Not produced by the pure parser; treat as a
                            // framing failure if it ever appears.
                            (
                                HttpResponse::error(400, "bad request"),
                                &self.metrics.malformed,
                            )
                        }
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    conn.state = ConnState::Closing;
                    conn.queue_response(&response, false, now);
                    break;
                }
            }
        }
        self.flush(id);
    }

    /// Hand finished responses back to their connections.
    fn apply_completions(&mut self, now: Instant) {
        let done: Vec<Completion> = std::mem::take(
            &mut *self
                .completions
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for completion in done {
            match completion {
                Completion::Response(id, response) => {
                    self.dirty.push(id);
                    self.apply_response(id, response, now);
                }
                Completion::StreamStart {
                    id,
                    status,
                    content_type,
                    rx,
                    cancel,
                } => {
                    self.dirty.push(id);
                    self.start_stream(id, status, &content_type, rx, cancel, now);
                }
            }
        }
    }

    fn apply_response(&mut self, id: u64, response: Option<HttpResponse>, now: Instant) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return; // connection died while the handler ran
        };
        let ConnState::InFlight { keep } = conn.state else {
            return;
        };
        match response {
            Some(resp) => {
                conn.state = if keep {
                    ConnState::Reading
                } else {
                    ConnState::Closing
                };
                conn.idle_since = now;
                conn.queue_response(&resp, keep, now);
                if keep {
                    // Write, then look for a pipelined successor.
                    self.process_input(id, now);
                    return;
                }
            }
            None => {
                // Handler panicked: contained to this connection.
                conn.state = ConnState::Closing;
                conn.queue_response(&HttpResponse::error(500, "handler panicked"), false, now);
            }
        }
        self.flush(id);
    }

    /// A worker began a streamed response: write the chunked head and
    /// switch the connection to [`ConnState::Streaming`].
    fn start_stream(
        &mut self,
        id: u64,
        status: u16,
        content_type: &str,
        rx: mpsc::Receiver<StreamMsg>,
        cancel: Arc<AtomicBool>,
        now: Instant,
    ) {
        let Some(conn) = self.conns.get_mut(&id) else {
            // Connection died while the handler ran: aborting the
            // producer (flag + dropped receiver) is all that is left.
            cancel.store(true, Ordering::SeqCst);
            return;
        };
        let ConnState::InFlight { keep } = conn.state else {
            cancel.store(true, Ordering::SeqCst);
            return;
        };
        self.metrics.streams.fetch_add(1, Ordering::Relaxed);
        let head = HttpResponse {
            status,
            ..HttpResponse::ok(content_type, Vec::new())
        };
        conn.state = ConnState::Streaming { keep };
        conn.body_stream = Some(StreamHandle { rx, cancel });
        conn.queue_bytes(&encode_stream_head(&head, keep), now);
        self.pump_stream(id, now);
    }

    /// Pump every live stream: move producer chunks into connection
    /// output buffers (bounded by the watermark) and flush.
    fn pump_streams(&mut self, now: Instant) {
        let streaming: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.body_stream.is_some())
            .map(|(&id, _)| id)
            .collect();
        for id in streaming {
            self.dirty.push(id);
            self.pump_stream(id, now);
        }
    }

    /// Refill one connection's output from its stream channel and flush.
    /// Ends the stream on an `End` message: terminal chunk + keep-alive
    /// resume when clean, abort (no terminal chunk, close) otherwise.
    fn pump_stream(&mut self, id: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let mut resume_keepalive = false;
        while let Some(handle) = &conn.body_stream {
            if conn.pending_out() >= STREAM_OUT_WATERMARK {
                break; // backpressure: the producer blocks on its channel
            }
            match handle.rx.try_recv() {
                Ok(StreamMsg::Chunk(bytes)) => {
                    conn.queue_bytes(&encode_chunk(&bytes), now);
                }
                Ok(StreamMsg::End { clean: true }) => {
                    conn.queue_bytes(CHUNK_TERMINATOR, now);
                    let keep = matches!(conn.state, ConnState::Streaming { keep: true });
                    conn.body_stream = None;
                    conn.state = if keep {
                        ConnState::Reading
                    } else {
                        ConnState::Closing
                    };
                    conn.idle_since = now;
                    resume_keepalive = keep;
                    break;
                }
                Ok(StreamMsg::End { clean: false }) => {
                    // Producer failed mid-stream: close WITHOUT the
                    // terminal chunk (already-queued chunks may still
                    // drain) so the peer sees a truncated stream.
                    self.metrics.streams_aborted.fetch_add(1, Ordering::Relaxed);
                    conn.body_stream = None;
                    conn.state = ConnState::Closing;
                    break;
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    // Worker vanished without an End (poisoned/killed):
                    // indistinguishable from a failure.
                    self.metrics.streams_aborted.fetch_add(1, Ordering::Relaxed);
                    conn.body_stream = None;
                    conn.state = ConnState::Closing;
                    break;
                }
            }
        }
        self.dirty.push(id);
        if resume_keepalive {
            // The stream ended cleanly on a persistent connection: a
            // pipelined successor may already be buffered.
            self.process_input(id, now);
        } else {
            self.flush(id);
        }
    }

    /// Enforce read/idle/write deadlines.
    fn expire_deadlines(&mut self, now: Instant) {
        let mut stalled = Vec::new();
        let mut dead = Vec::new();
        for (&id, conn) in &self.conns {
            if conn.write_deadline.is_some_and(|d| now >= d) {
                dead.push(id); // peer stopped reading its response
            } else if conn.state == ConnState::Reading {
                if conn.read_deadline.is_some_and(|d| now >= d) {
                    stalled.push(id); // mid-request overrun: 408
                } else if conn.buf.is_empty()
                    && conn.read_deadline.is_none()
                    && !conn.wants_write()
                    && now >= conn.idle_since + self.cfg.idle_timeout
                {
                    dead.push(id); // idle keep-alive: silent close
                }
            }
        }
        for id in dead {
            self.close(id);
        }
        for id in stalled {
            self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.state = ConnState::Closing;
                conn.read_deadline = None;
                conn.queue_response(
                    &HttpResponse::error(408, "request not completed in time"),
                    false,
                    now,
                );
                self.dirty.push(id);
                self.flush(id);
            }
        }
    }

    /// Opportunistically drain a connection's output; close when done if
    /// the state machine says so.
    fn flush(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if !conn.wants_write() {
            if conn.state == ConnState::Closing {
                self.close(id);
            }
            return;
        }
        match conn.try_write() {
            Ok(true) if conn.state == ConnState::Closing => self.close(id),
            Ok(_) => {} // drained or would-block; poller handles the rest
            Err(_) => self.close(id),
        }
    }

    fn close(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            if let Some(handle) = &conn.body_stream {
                // A stream handle still present means the response never
                // finished: tell the producer its reader is gone. The
                // dropped receiver below unblocks a worker parked in
                // `send`, and the flag stops the plan at its next check.
                handle.cancel.store(true, Ordering::SeqCst);
                self.metrics.streams_aborted.fetch_add(1, Ordering::Relaxed);
            }
            self.poller.deregister(id);
            conn.shutdown();
            self.metrics.open.fetch_sub(1, Ordering::SeqCst);
            self.metrics.shards[self.idx]
                .open
                .fetch_sub(1, Ordering::SeqCst);
        }
    }
}
