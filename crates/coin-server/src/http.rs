//! Minimal HTTP/1.0 server and client over `std::net`.
//!
//! "The protocol supporting this API is currently tunneled in the HyperText
//! Transfer Protocol (HTTP) of the World Wide Web. The API can be used
//! within any application with basic capabilities for Internet socket based
//! communication." (paper §2)
//!
//! The server runs a small worker pool fed by an mpsc channel; requests
//! are parsed with `Content-Length` bodies, responses carry status, content
//! type and body. The client side offers blocking `get`/`post` helpers.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl HttpRequest {
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    pub status: u16,
    pub content_type: String,
    pub body: Vec<u8>,
}

impl HttpResponse {
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type: content_type.into(),
            body: body.into(),
        }
    }

    pub fn json(body: &crate::json::Json) -> HttpResponse {
        HttpResponse::ok("application/json", body.to_string())
    }

    pub fn html(body: &str) -> HttpResponse {
        HttpResponse::ok("text/html; charset=utf-8", body)
    }

    pub fn error(status: u16, message: &str) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            body: message.as_bytes().to_vec(),
        }
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }
}

/// HTTP-layer errors.
#[derive(Debug)]
pub enum HttpError {
    Io(std::io::Error),
    Malformed(String),
    Status(u16, String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed http: {m}"),
            HttpError::Status(code, body) => write!(f, "http {code}: {body}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// The request handler type.
pub type Handler = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

/// A running HTTP server; dropping it (or calling [`ServerHandle::stop`])
/// shuts the listener down.
pub struct ServerHandle {
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Signal shutdown and join the accept loop.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

/// Start a server on `addr` (use port 0 for an ephemeral port) with
/// `workers` handler threads.
pub fn serve(addr: &str, workers: usize, handler: Handler) -> Result<ServerHandle, HttpError> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    for _ in 0..workers.max(1) {
        let rx = Arc::clone(&rx);
        let handler = Arc::clone(&handler);
        std::thread::spawn(move || loop {
            let next = rx.lock().expect("worker queue poisoned").recv();
            match next {
                Ok(stream) => {
                    let _ = handle_connection(stream, &handler);
                }
                Err(_) => break,
            }
        });
    }

    let stop2 = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(s) => {
                    let _ = tx.send(s);
                }
                Err(_) => break,
            }
        }
    });

    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(stream: TcpStream, handler: &Handler) -> Result<(), HttpError> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let request = match read_request(&mut reader) {
        Ok(r) => r,
        Err(HttpError::Io(_)) => return Ok(()), // dummy shutdown connection
        Err(e) => {
            write_response(
                &stream,
                &HttpResponse::error(400, &format!("bad request: {e}")),
            )?;
            return Ok(());
        }
    };
    let response = handler(&request);
    write_response(&stream, &response)
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<HttpRequest, HttpError> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.trim().is_empty() {
        return Err(HttpError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "empty request",
        )));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_owned();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing path".into()))?
        .to_owned();
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (target, None),
    };
    let mut query = BTreeMap::new();
    if let Some(q) = query_str {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            match pair.split_once('=') {
                Some((k, v)) => {
                    query.insert(
                        coin_wrapper::web::url_decode(k),
                        coin_wrapper::web::url_decode(v),
                    );
                }
                None => {
                    query.insert(coin_wrapper::web::url_decode(pair), String::new());
                }
            }
        }
    }

    let mut headers = BTreeMap::new();
    loop {
        let mut hline = String::new();
        reader.read_line(&mut hline)?;
        let trimmed = hline.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((k, v)) = trimmed.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_owned());
        }
    }

    let len: usize = headers
        .get("content-length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    if len > 0 {
        reader.read_exact(&mut body)?;
    }
    Ok(HttpRequest {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn write_response(mut stream: &TcpStream, resp: &HttpResponse) -> Result<(), HttpError> {
    let head = format!(
        "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        resp.status_text(),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Issue a request to `addr` (e.g. `127.0.0.1:4321`). Returns status+body;
/// a non-2xx status is an [`HttpError::Status`].
pub fn request(
    addr: &SocketAddr,
    method: &str,
    path: &str,
    content_type: Option<&str>,
    body: &[u8],
) -> Result<Vec<u8>, HttpError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    let mut head = format!("{method} {path} HTTP/1.0\r\nHost: {addr}\r\n");
    if let Some(ct) = content_type {
        head.push_str(&format!("Content-Type: {ct}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {status_line:?}")))?;
    // Headers.
    let mut content_length: Option<usize> = None;
    loop {
        let mut hline = String::new();
        reader.read_line(&mut hline)?;
        let trimmed = hline.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((k, v)) = trimmed.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    if !(200..300).contains(&status) {
        return Err(HttpError::Status(
            status,
            String::from_utf8_lossy(&body).into_owned(),
        ));
    }
    Ok(body)
}

/// GET helper.
pub fn get(addr: &SocketAddr, path: &str) -> Result<Vec<u8>, HttpError> {
    request(addr, "GET", path, None, &[])
}

/// POST helper.
pub fn post(
    addr: &SocketAddr,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> Result<Vec<u8>, HttpError> {
    request(addr, "POST", path, Some(content_type), body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> ServerHandle {
        serve(
            "127.0.0.1:0",
            2,
            Arc::new(
                |req: &HttpRequest| match (req.method.as_str(), req.path.as_str()) {
                    ("GET", "/hello") => HttpResponse::ok(
                        "text/plain",
                        format!("hi {}", req.query.get("name").map_or("?", String::as_str)),
                    ),
                    ("POST", "/echo") => {
                        HttpResponse::ok("application/octet-stream", req.body.clone())
                    }
                    _ => HttpResponse::error(404, "nope"),
                },
            ),
        )
        .unwrap()
    }

    #[test]
    fn get_roundtrip() {
        let server = echo_server();
        let body = get(&server.addr, "/hello?name=coin").unwrap();
        assert_eq!(body, b"hi coin");
        server.stop();
    }

    #[test]
    fn post_roundtrip_binary() {
        let server = echo_server();
        let payload: Vec<u8> = (0u8..100).collect();
        let body = post(&server.addr, "/echo", "application/octet-stream", &payload).unwrap();
        assert_eq!(body, payload);
        server.stop();
    }

    #[test]
    fn not_found_is_status_error() {
        let server = echo_server();
        match get(&server.addr, "/nope") {
            Err(HttpError::Status(404, _)) => {}
            other => panic!("{other:?}"),
        }
        server.stop();
    }

    #[test]
    fn concurrent_requests() {
        let server = echo_server();
        let addr = server.addr;
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let body = get(&addr, &format!("/hello?name=t{i}")).unwrap();
                    assert_eq!(body, format!("hi t{i}").into_bytes());
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        server.stop();
    }

    #[test]
    fn query_decoding() {
        let server = serve(
            "127.0.0.1:0",
            1,
            Arc::new(|req: &HttpRequest| HttpResponse::ok("text/plain", req.query["q"].clone())),
        )
        .unwrap();
        let body = get(&server.addr, "/x?q=a+b%3Dc").unwrap();
        assert_eq!(body, b"a b=c");
        server.stop();
    }
}
