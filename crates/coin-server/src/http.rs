//! HTTP/1.1 server and client over `std::net`.
//!
//! "The protocol supporting this API is currently tunneled in the HyperText
//! Transfer Protocol (HTTP) of the World Wide Web. The API can be used
//! within any application with basic capabilities for Internet socket based
//! communication." (paper §2)
//!
//! The transport is built for sustained multi-client traffic rather than
//! one connection per request:
//!
//! * **Keep-alive**: connections are persistent by default (HTTP/1.1
//!   semantics; `Connection: close` and HTTP/1.0 are honored), serving
//!   pipelined sequential requests until the peer closes, an idle timeout
//!   elapses, or the per-connection request cap is reached.
//! * **Two transports** ([`Transport`]): the default event-driven
//!   *reactor* multiplexes every nonblocking connection on one
//!   `poll(2)`-based readiness loop and hands only *complete* requests
//!   to the worker pool, so idle or slow connections cost no thread; the
//!   legacy *threaded* transport pins one worker per in-service
//!   connection.
//! * **Bounded backpressure**: admitted work enters a bounded queue under
//!   a connection budget; overflow is shed immediately with `503 Service
//!   Unavailable` + `Retry-After` instead of queueing unboundedly.
//! * **Fault isolation**: malformed requests get a `400`, oversized heads
//!   a `431`, oversized bodies a `413`, stalled requests a `408` — and
//!   the server lives on to serve the next connection.
//!
//! The client side offers the blocking one-shot `get`/`post` helpers plus
//! [`HttpClient`], a persistent connection that reuses one socket across
//! requests and transparently reconnects when the pooled socket went
//! stale.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// How often parked workers re-check the stop flag and idle budget.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Longest back-off sleep of the idle accept loop.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(2);
/// Cap on one request head line (request line or a single header).
pub(crate) const MAX_HEAD_LINE: usize = 8 * 1024;
/// Cap on the whole request head (request line + headers).
pub(crate) const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
    /// Protocol version from the request line (`HTTP/1.1`, `HTTP/1.0`).
    pub version: String,
}

impl HttpRequest {
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A streaming response body: the transport pulls chunks from the
/// producer and frames them as `Transfer-Encoding: chunked` while the
/// producer is still computing later rows — nothing is materialized.
///
/// The producer returns `Ok(Some(bytes))` per chunk, `Ok(None)` at the
/// end (the transport writes the terminal chunk; keep-alive resumes),
/// and `Err` on a mid-stream failure — the transport then closes the
/// connection *without* the terminal chunk, so the peer detects
/// truncation instead of trusting a half response.
///
/// The transport flips [`StreamBody::cancel_flag`] when the peer
/// disconnects mid-stream; producers that wire the flag into a
/// [`coin_rel::CancelToken`] abort their query pipeline instead of
/// computing rows nobody will read.
pub struct StreamBody {
    cancel: Arc<AtomicBool>,
    next: Box<dyn FnMut() -> Result<Option<Vec<u8>>, String> + Send>,
}

impl StreamBody {
    /// Wrap a chunk producer. `cancel` is the flag the transport flips on
    /// peer disconnect — pass the same flag the producer polls.
    pub fn new(
        cancel: Arc<AtomicBool>,
        next: impl FnMut() -> Result<Option<Vec<u8>>, String> + Send + 'static,
    ) -> StreamBody {
        StreamBody {
            cancel,
            next: Box::new(next),
        }
    }

    /// The disconnect flag shared with the producer.
    pub fn cancel_flag(&self) -> &Arc<AtomicBool> {
        &self.cancel
    }

    /// Pull the next chunk, containing producer panics as errors.
    pub(crate) fn pull(&mut self) -> Result<Option<Vec<u8>>, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut self.next))
            .unwrap_or_else(|_| Err("stream producer panicked".into()))
    }
}

impl std::fmt::Debug for StreamBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamBody")
            .field("cancelled", &self.cancel.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// An HTTP response under construction.
#[derive(Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub content_type: String,
    pub body: Vec<u8>,
    /// Emitted as a `Retry-After` header (seconds) when set — load-shed
    /// responses tell well-behaved clients when to come back.
    pub retry_after: Option<u64>,
    /// When set, `body` is ignored and the response is sent
    /// `Transfer-Encoding: chunked`, pulled from the producer as the
    /// socket drains (see [`StreamBody`]).
    pub stream: Option<StreamBody>,
}

impl HttpResponse {
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type: content_type.into(),
            body: body.into(),
            retry_after: None,
            stream: None,
        }
    }

    /// A `200` whose body streams from `stream` as a chunked response.
    pub fn streamed(content_type: &str, stream: StreamBody) -> HttpResponse {
        HttpResponse {
            stream: Some(stream),
            ..HttpResponse::ok(content_type, Vec::new())
        }
    }

    pub fn json(body: &crate::json::Json) -> HttpResponse {
        HttpResponse::ok("application/json", body.to_string())
    }

    /// A JSON response from an already-serialized body — the direct
    /// serialization path ([`crate::json::JsonBuf`]) that skips the
    /// intermediate [`crate::json::Json`] tree.
    pub fn json_raw(body: String) -> HttpResponse {
        HttpResponse::ok("application/json", body)
    }

    pub fn html(body: &str) -> HttpResponse {
        HttpResponse::ok("text/html; charset=utf-8", body)
    }

    pub fn error(status: u16, message: &str) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            body: message.as_bytes().to_vec(),
            retry_after: None,
            stream: None,
        }
    }

    /// The load-shedding response: `503` with a `Retry-After` hint.
    pub fn unavailable(retry_after_secs: u64) -> HttpResponse {
        HttpResponse {
            retry_after: Some(retry_after_secs),
            ..HttpResponse::error(503, "server overloaded; retry later")
        }
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// HTTP-layer errors.
#[derive(Debug)]
pub enum HttpError {
    Io(std::io::Error),
    Malformed(String),
    Status(u16, String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed http: {m}"),
            HttpError::Status(code, body) => write!(f, "http {code}: {body}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// The request handler type.
pub type Handler = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

/// How the server maps connections onto threads.
///
/// Either transport speaks the same HTTP/1.1 dialect (keep-alive,
/// pipelining, the `400`/`408`/`413`/`431`/`503 + Retry-After` error
/// contract) and feeds the same bounded worker pool — they differ only in
/// who owns a connection *between* requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// One worker thread per in-service connection. A keep-alive client
    /// pins its worker for the connection's whole lifetime, so the
    /// concurrent client fleet is capped by [`ServerConfig::workers`].
    Threaded,
    /// Event-driven readiness loops own every connection and drive the
    /// per-connection framing/keep-alive/timeout state machines; workers
    /// only ever see *complete* requests. N idle or slow connections
    /// cost zero worker threads, so the open-connection count is
    /// decoupled from the pool size. Connections are sharded round-robin
    /// across [`ServerConfig::reactor_shards`] reactor threads, each
    /// multiplexing with the [`ReactorBackend`] of choice. Falls back to
    /// [`Transport::Threaded`] on non-Unix hosts.
    #[default]
    Reactor,
}

/// Which OS readiness primitive each reactor shard multiplexes with.
///
/// Both backends drive identical connection state machines; they differ
/// only in where the interest set lives. `poll(2)` rebuilds its whole
/// fd array on every wakeup — O(open connections) per loop iteration —
/// while `epoll(7)` keeps a persistent kernel-side interest set updated
/// only when a connection's interest actually changes, so a wakeup
/// costs O(ready). [`ServerMetricsSnapshot::interest_ops`] exposes the
/// difference as a counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReactorBackend {
    /// Pick the best primitive available: `epoll(7)` on Linux,
    /// `poll(2)` elsewhere.
    #[default]
    Auto,
    /// The portable `poll(2)` loop.
    Poll,
    /// Linux `epoll(7)` with a persistent interest set. On hosts
    /// without epoll this silently falls back to `poll(2)` — the
    /// contract is identical, only the syscall shape differs.
    Epoll,
}

/// Transport tuning knobs for [`serve_with`].
///
/// ```
/// use coin_server::http::{ServerConfig, Transport};
/// use std::time::Duration;
///
/// let cfg = ServerConfig {
///     workers: 8,
///     idle_timeout: Duration::from_secs(30),
///     transport: Transport::Reactor,
///     ..ServerConfig::default()
/// };
/// assert!(cfg.keep_alive);
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Handler threads. Under [`Transport::Threaded`] each owns at most
    /// one connection at a time, so this also bounds concurrent
    /// in-service connections; under [`Transport::Reactor`] it bounds
    /// only concurrently *executing* requests — open connections can far
    /// exceed it.
    pub workers: usize,
    /// Bounded queue of admitted-but-unserved work (whole connections
    /// under [`Transport::Threaded`], parsed requests under
    /// [`Transport::Reactor`]). Overflow is shed with `503 +
    /// Retry-After`.
    pub queue_depth: usize,
    /// Budget on open connections. `0` derives `workers + queue_depth`
    /// under [`Transport::Threaded`] and
    /// `max(workers + queue_depth, 1024)` under [`Transport::Reactor`]
    /// (where idle connections are cheap). Excess connections are shed
    /// with `503`.
    pub max_connections: usize,
    /// Persistent connections (`false` forces `Connection: close` on
    /// every response).
    pub keep_alive: bool,
    /// Close a keep-alive connection after this long with no new request.
    pub idle_timeout: Duration,
    /// Close a connection after serving this many requests (0 = no cap).
    pub max_requests_per_connection: usize,
    /// Largest accepted request body; larger gets `413` and a close.
    pub max_body_bytes: usize,
    /// `Retry-After` seconds advertised on shed responses.
    pub retry_after_secs: u64,
    /// Deadline for reading one request once its first byte arrived
    /// (slow-loris defense: overrunning it gets `408` and a close).
    pub read_timeout: Duration,
    /// Connection-to-thread mapping; see [`Transport`].
    pub transport: Transport,
    /// Reactor event-loop threads; accepted connections are handed off
    /// round-robin, so each shard owns `1/N` of the fleet. `0` derives
    /// one shard per available core (capped at 8). Ignored under
    /// [`Transport::Threaded`].
    pub reactor_shards: usize,
    /// Readiness primitive for the reactor shards; see
    /// [`ReactorBackend`]. Ignored under [`Transport::Threaded`].
    pub reactor_backend: ReactorBackend,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            max_connections: 0,
            keep_alive: true,
            idle_timeout: Duration::from_secs(5),
            max_requests_per_connection: 0,
            max_body_bytes: 1024 * 1024,
            retry_after_secs: 1,
            read_timeout: Duration::from_secs(10),
            transport: Transport::default(),
            reactor_shards: 0,
            reactor_backend: ReactorBackend::default(),
        }
    }
}

impl ServerConfig {
    /// The connection budget actually enforced.
    pub(crate) fn budget(&self) -> usize {
        if self.max_connections != 0 {
            return self.max_connections;
        }
        let derived = self.workers.max(1) + self.queue_depth.max(1);
        match self.transport {
            Transport::Threaded => derived,
            // Idle connections cost no thread under the reactor, so the
            // derived default should not tie fleet size to pool size.
            Transport::Reactor => derived.max(1024),
        }
    }
}

/// Cumulative transport counters, readable while the server runs.
#[derive(Default)]
pub(crate) struct ServerMetrics {
    pub(crate) accepted: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) keepalive_reuses: AtomicU64,
    pub(crate) malformed: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    /// Gauge: connections currently admitted (queued + in service).
    pub(crate) open: AtomicU64,
    /// Reactor readiness-loop iterations (0 under [`Transport::Threaded`]).
    pub(crate) wakeups: AtomicU64,
    /// Chunked (streaming) responses started.
    pub(crate) streams: AtomicU64,
    /// Streaming responses that ended without the terminal chunk: peer
    /// disconnect, producer error, or producer panic.
    pub(crate) streams_aborted: AtomicU64,
    /// Per-shard reactor gauges (empty under [`Transport::Threaded`]).
    pub(crate) shards: Vec<ShardMetrics>,
}

/// Per-shard reactor gauges; the global counters above aggregate them.
#[derive(Default)]
pub(crate) struct ShardMetrics {
    /// Connections currently owned by this shard (the acceptor
    /// increments at handoff; the shard decrements on close).
    pub(crate) open: AtomicU64,
    /// Readiness-loop iterations on this shard.
    pub(crate) wakeups: AtomicU64,
    /// Cumulative interest-set syscall traffic on this shard: pollfd
    /// slots submitted per wait (poll backend) or `epoll_ctl` calls
    /// (epoll backend). See [`ServerMetricsSnapshot::interest_ops`].
    pub(crate) interest_ops: AtomicU64,
}

impl ServerMetrics {
    /// Metrics for a reactor transport with `n` shards.
    pub(crate) fn with_shards(n: usize) -> ServerMetrics {
        ServerMetrics {
            shards: (0..n).map(|_| ShardMetrics::default()).collect(),
            ..ServerMetrics::default()
        }
    }

    fn snapshot(&self) -> ServerMetricsSnapshot {
        ServerMetricsSnapshot {
            connections_accepted: self.accepted.load(Ordering::Relaxed),
            connections_shed: self.shed.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            keepalive_reuses: self.keepalive_reuses.load(Ordering::Relaxed),
            malformed_requests: self.malformed.load(Ordering::Relaxed),
            request_timeouts: self.timeouts.load(Ordering::Relaxed),
            open_connections: self.open.load(Ordering::SeqCst),
            reactor_wakeups: self.wakeups.load(Ordering::Relaxed),
            streams: self.streams.load(Ordering::Relaxed),
            streams_aborted: self.streams_aborted.load(Ordering::Relaxed),
            open_per_shard: self
                .shards
                .iter()
                .map(|s| s.open.load(Ordering::SeqCst))
                .collect(),
            wakeups_per_shard: self
                .shards
                .iter()
                .map(|s| s.wakeups.load(Ordering::Relaxed))
                .collect(),
            interest_ops: self
                .shards
                .iter()
                .map(|s| s.interest_ops.load(Ordering::Relaxed))
                .sum(),
        }
    }
}

/// Point-in-time copy of the server's transport counters (see
/// [`ServerHandle::metrics`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerMetricsSnapshot {
    /// Connections the accept loop took off the listener.
    pub connections_accepted: u64,
    /// Admissions refused with `503 + Retry-After`: whole connections
    /// (budget exceeded, or — under [`Transport::Threaded`] — queue
    /// full), plus individual requests shed off open connections when the
    /// reactor's work queue is full.
    pub connections_shed: u64,
    /// Requests handed to handlers.
    pub requests: u64,
    /// Requests served on an already-used connection (keep-alive wins).
    pub keepalive_reuses: u64,
    /// Requests rejected as malformed or oversized (4xx, connection
    /// closed, worker survives).
    pub malformed_requests: u64,
    /// Requests that started but did not finish arriving within
    /// `read_timeout` (answered `408`, connection closed).
    pub request_timeouts: u64,
    /// Gauge: connections currently open (admitted and not yet closed).
    /// Under [`Transport::Reactor`] this can far exceed `workers` — the
    /// point of the readiness loop.
    pub open_connections: u64,
    /// Gauge of reactor activity: readiness-loop iterations so far
    /// (`poll(2)` returns). Always 0 under [`Transport::Threaded`].
    pub reactor_wakeups: u64,
    /// Chunked (streaming) responses started.
    pub streams: u64,
    /// Streaming responses that ended without the terminal chunk — the
    /// peer disconnected mid-stream (the running plan was cancelled), the
    /// producer failed, or it panicked.
    pub streams_aborted: u64,
    /// Per-shard gauge of open connections (empty under
    /// [`Transport::Threaded`]). The acceptor's round-robin handoff
    /// keeps these balanced: connection `i` lands on shard `i % N`.
    pub open_per_shard: Vec<u64>,
    /// Per-shard readiness-loop iterations (empty under
    /// [`Transport::Threaded`]); sums to [`Self::reactor_wakeups`].
    pub wakeups_per_shard: Vec<u64>,
    /// Cumulative interest-set syscall traffic across all shards:
    /// pollfd slots submitted per wait under [`ReactorBackend::Poll`]
    /// (so it grows by O(open connections) on *every* wakeup), or
    /// `epoll_ctl` calls under [`ReactorBackend::Epoll`] (so it grows
    /// only when a connection's interest actually changes, independent
    /// of how many idle connections are parked). The syscall-shape
    /// signal that the epoll interest set really is persistent.
    pub interest_ops: u64,
}

/// A running HTTP server; dropping it (or calling [`ServerHandle::stop`])
/// shuts the listener down.
pub struct ServerHandle {
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    metrics: Arc<ServerMetrics>,
    /// Kicks the reactor out of `poll(2)` so it notices the stop flag
    /// promptly. `None` under [`Transport::Threaded`].
    waker: Option<Box<dyn Fn() + Send + Sync>>,
}

impl ServerHandle {
    /// Signal shutdown and join the event loop and workers.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Cumulative transport counters so far.
    ///
    /// Counters are updated with relaxed atomics while the server runs;
    /// a snapshot taken during live traffic is internally consistent
    /// enough for monitoring, and exact once traffic quiesces.
    pub fn metrics(&self) -> ServerMetricsSnapshot {
        self.metrics.snapshot()
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(wake) = &self.waker {
            wake();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }

    /// Assemble a handle from transport parts (used by both transports).
    pub(crate) fn from_parts(
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        accept_thread: std::thread::JoinHandle<()>,
        workers: Vec<std::thread::JoinHandle<()>>,
        metrics: Arc<ServerMetrics>,
        waker: Option<Box<dyn Fn() + Send + Sync>>,
    ) -> ServerHandle {
        ServerHandle {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            workers,
            metrics,
            waker,
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

/// Start a server on `addr` (use port 0 for an ephemeral port) with
/// `workers` handler threads and default transport settings.
pub fn serve(addr: &str, workers: usize, handler: Handler) -> Result<ServerHandle, HttpError> {
    serve_with(
        addr,
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
        handler,
    )
}

/// Start a server with explicit transport settings.
///
/// The listener binds immediately (use port `0` for an ephemeral port,
/// read back from [`ServerHandle::addr`]); the returned handle owns the
/// transport threads and shuts them down on [`ServerHandle::stop`] or
/// drop.
///
/// # Load-shedding contract
///
/// Admission is bounded, never queued unboundedly. A connection beyond
/// [`ServerConfig::max_connections`] — or, under
/// [`Transport::Threaded`], one that finds the work queue full — is
/// answered `503 Service Unavailable` with a `Retry-After:
/// {retry_after_secs}` header and closed. Under [`Transport::Reactor`]
/// a *request* arriving while the work queue is full gets the same
/// `503 + Retry-After`, but on a keep-alive connection the socket
/// stays open — a well-behaved client backs off and retries without
/// reconnecting. Shed admissions are counted in
/// [`ServerMetricsSnapshot::connections_shed`].
pub fn serve_with(
    addr: &str,
    cfg: ServerConfig,
    handler: Handler,
) -> Result<ServerHandle, HttpError> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    match cfg.transport {
        #[cfg(unix)]
        Transport::Reactor => crate::reactor::serve(listener, cfg, handler),
        // Without poll(2) the reactor has no readiness primitive; the
        // threaded transport speaks the identical protocol.
        #[cfg(not(unix))]
        Transport::Reactor => serve_threaded(listener, cfg, handler),
        Transport::Threaded => serve_threaded(listener, cfg, handler),
    }
}

/// The thread-per-connection transport: a nonblocking accept loop admits
/// whole connections into a bounded queue; each worker owns one
/// connection at a time for its entire keep-alive lifetime.
fn serve_threaded(
    listener: TcpListener,
    cfg: ServerConfig,
    handler: Handler,
) -> Result<ServerHandle, HttpError> {
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(ServerMetrics::default());
    // `active` counts admitted connections (queued + in service) against
    // the budget; workers decrement when a connection is fully closed.
    let active = Arc::new(AtomicUsize::new(0));

    let (tx, rx) = mpsc::sync_channel::<TcpStream>(cfg.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(cfg.workers.max(1));
    for _ in 0..cfg.workers.max(1) {
        let rx = Arc::clone(&rx);
        let handler = Arc::clone(&handler);
        let cfg = cfg.clone();
        let stop = Arc::clone(&stop);
        let metrics = Arc::clone(&metrics);
        let active = Arc::clone(&active);
        workers.push(std::thread::spawn(move || {
            /// Returns the admission-budget slot when the connection ends —
            /// via `Drop`, so even a panic unwinding out of the connection
            /// loop can never leak budget (a leaked slot would eventually
            /// wedge the accept loop into shedding everything).
            struct Slot<'a>(&'a AtomicUsize, &'a ServerMetrics);
            impl Drop for Slot<'_> {
                fn drop(&mut self) {
                    self.0.fetch_sub(1, Ordering::SeqCst);
                    self.1.open.fetch_sub(1, Ordering::SeqCst);
                }
            }
            loop {
                let next = rx
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .recv();
                match next {
                    Ok(stream) => {
                        let _slot = Slot(&active, &metrics);
                        serve_connection(stream, &cfg, &handler, &metrics, &stop);
                    }
                    Err(_) => break,
                }
            }
        }));
    }

    let stop2 = Arc::clone(&stop);
    let metrics2 = Arc::clone(&metrics);
    let budget = cfg.budget();
    let retry_after = cfg.retry_after_secs;
    let accept_thread = std::thread::spawn(move || {
        let mut backoff = Duration::from_micros(50);
        loop {
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    backoff = Duration::from_micros(50);
                    metrics2.accepted.fetch_add(1, Ordering::Relaxed);
                    // Accepted sockets may inherit O_NONBLOCK on some
                    // platforms; workers want blocking reads.
                    let _ = stream.set_nonblocking(false);
                    if active.load(Ordering::SeqCst) >= budget {
                        shed(stream, retry_after, &metrics2);
                        continue;
                    }
                    active.fetch_add(1, Ordering::SeqCst);
                    metrics2.open.fetch_add(1, Ordering::SeqCst);
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(mpsc::TrySendError::Full(stream)) => {
                            active.fetch_sub(1, Ordering::SeqCst);
                            metrics2.open.fetch_sub(1, Ordering::SeqCst);
                            shed(stream, retry_after, &metrics2);
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(_) => {
                    // WouldBlock (idle) and transient accept failures
                    // (ECONNABORTED from a peer RST mid-handshake, EMFILE
                    // under FD exhaustion) take the same path: back off
                    // and keep accepting — the loop only exits on the
                    // stop flag, never on a transient error. Exponential
                    // back-off keeps the loop cheap when quiet and snappy
                    // under bursts.
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                }
            }
        }
        // Dropping `tx` wakes every idle worker out of `recv`.
    });

    Ok(ServerHandle::from_parts(
        local,
        stop,
        accept_thread,
        workers,
        metrics,
        None,
    ))
}

/// Refuse a connection with the load-shedding response.
pub(crate) fn shed(stream: TcpStream, retry_after_secs: u64, metrics: &ServerMetrics) {
    metrics.shed.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = write_response(&stream, &HttpResponse::unavailable(retry_after_secs), false);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Why reading the next request off a connection stopped.
#[derive(Debug)]
pub(crate) enum RequestError {
    /// Framing violation: `400`, close, keep the worker.
    Malformed(String),
    /// Request line or headers larger than the caps: `431`, close.
    HeadTooLarge(String),
    /// Body larger than the configured cap: `413`, close.
    TooLarge(String),
    /// The peer started a request but did not finish it within
    /// `read_timeout` (slow-loris defense): `408`, close.
    Timeout,
    /// Hard I/O error, mid-request EOF, or server shutdown: close
    /// silently.
    Io,
}

/// Serve one connection until it closes, idles out, errors, or the server
/// stops. Requests are read sequentially off the socket, so pipelined
/// requests are answered in order.
fn serve_connection(
    stream: TcpStream,
    cfg: &ServerConfig,
    handler: &Handler,
    metrics: &ServerMetrics,
    stop: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    // The socket reads on a short poll timeout for the connection's whole
    // life: every blocking read re-checks the stop flag and the relevant
    // deadline (idle or per-request) within one tick.
    let poll = POLL_INTERVAL
        .min(cfg.idle_timeout)
        .max(Duration::from_millis(1));
    let _ = stream.set_read_timeout(Some(poll));
    let mut served = 0usize;
    let mut idle = Duration::ZERO;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Peek for the next request.
        match reader.fill_buf() {
            Ok([]) => break, // peer closed cleanly
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                idle += poll;
                if idle >= cfg.idle_timeout {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        idle = Duration::ZERO;
        // The whole request must arrive within `read_timeout` regardless
        // of how slowly bytes drip in (read_request re-polls on timeout).
        let deadline = std::time::Instant::now() + cfg.read_timeout;
        match read_request(&mut reader, cfg.max_body_bytes, stop, deadline) {
            Ok(request) => {
                served += 1;
                let keep = connection_persists(&request, cfg, served);
                // Contain handler panics: the worker and its budget slot
                // survive; the peer gets a 500 and a clean close.
                let response =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&request)));
                metrics.requests.fetch_add(1, Ordering::Relaxed);
                if served > 1 {
                    metrics.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
                }
                let Ok(mut response) = response else {
                    let _ = write_response(
                        &stream,
                        &HttpResponse::error(500, "handler panicked"),
                        false,
                    );
                    break;
                };
                if response.stream.is_some() {
                    metrics.streams.fetch_add(1, Ordering::Relaxed);
                    match write_stream_response(&stream, &mut response, keep) {
                        StreamOutcome::Clean => {
                            if keep {
                                continue;
                            }
                            break;
                        }
                        StreamOutcome::Aborted => {
                            metrics.streams_aborted.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                if write_response(&stream, &response, keep).is_err() || !keep {
                    break;
                }
            }
            Err(RequestError::Malformed(m)) => {
                metrics.malformed.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &stream,
                    &HttpResponse::error(400, &format!("bad request: {m}")),
                    false,
                );
                break;
            }
            Err(RequestError::HeadTooLarge(m)) => {
                metrics.malformed.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(&stream, &HttpResponse::error(431, &m), false);
                break;
            }
            Err(RequestError::TooLarge(m)) => {
                metrics.malformed.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(&stream, &HttpResponse::error(413, &m), false);
                break;
            }
            Err(RequestError::Timeout) => {
                metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &stream,
                    &HttpResponse::error(408, "request not completed in time"),
                    false,
                );
                break;
            }
            Err(RequestError::Io) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Does this connection survive past the current request?
pub(crate) fn connection_persists(
    request: &HttpRequest,
    cfg: &ServerConfig,
    served: usize,
) -> bool {
    if !cfg.keep_alive {
        return false;
    }
    if cfg.max_requests_per_connection != 0 && served >= cfg.max_requests_per_connection {
        return false;
    }
    match request.headers.get("connection") {
        Some(c) if c.eq_ignore_ascii_case("close") => false,
        Some(c) if c.eq_ignore_ascii_case("keep-alive") => true,
        _ => request.version == "HTTP/1.1",
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// The peer dropped the connection (as opposed to timing out or failing
/// some other way) — the only error a pooled client socket may retry on.
fn is_disconnect(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
    )
}

/// Map a failed socket read during request parsing: timeouts re-poll
/// until the request deadline (or shutdown), anything else is fatal.
fn parse_read_error(
    e: &std::io::Error,
    stop: &AtomicBool,
    deadline: std::time::Instant,
) -> Result<(), RequestError> {
    if !is_timeout(e) {
        return Err(RequestError::Io);
    }
    if stop.load(Ordering::SeqCst) {
        return Err(RequestError::Io);
    }
    if std::time::Instant::now() >= deadline {
        return Err(RequestError::Timeout);
    }
    Ok(()) // still within budget: poll again
}

/// Read one head line (request line or header), bounded by
/// [`MAX_HEAD_LINE`] and the request deadline. EOF mid-line is a hard
/// error; a byte-dripping peer runs out of `deadline`, not of patience.
fn read_head_line(
    reader: &mut BufReader<TcpStream>,
    stop: &AtomicBool,
    deadline: std::time::Instant,
) -> Result<String, RequestError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (found, used) = {
            let buf = match reader.fill_buf() {
                Ok([]) => return Err(RequestError::Io),
                Ok(buf) => buf,
                Err(e) => {
                    parse_read_error(&e, stop, deadline)?;
                    continue;
                }
            };
            match buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    line.extend_from_slice(&buf[..=i]);
                    (true, i + 1)
                }
                None => {
                    line.extend_from_slice(buf);
                    (false, buf.len())
                }
            }
        };
        reader.consume(used);
        if line.len() > MAX_HEAD_LINE {
            return Err(RequestError::HeadTooLarge("head line too long".into()));
        }
        if found {
            break;
        }
    }
    let mut text = String::from_utf8_lossy(&line).into_owned();
    while text.ends_with('\n') || text.ends_with('\r') {
        text.pop();
    }
    Ok(text)
}

/// `read_exact` honoring the request deadline and the stop flag.
fn read_body(
    reader: &mut BufReader<TcpStream>,
    buf: &mut [u8],
    stop: &AtomicBool,
    deadline: std::time::Instant,
) -> Result<(), RequestError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(RequestError::Io),
            Ok(n) => filled += n,
            Err(e) => parse_read_error(&e, stop, deadline)?,
        }
    }
    Ok(())
}

/// Parse one request off the connection (request line, headers,
/// `Content-Length` body), enforcing framing and size limits plus an
/// overall read deadline.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body_bytes: usize,
    stop: &AtomicBool,
    deadline: std::time::Instant,
) -> Result<HttpRequest, RequestError> {
    // Tolerate blank line(s) between pipelined requests (RFC 9112 §2.2).
    let mut request_line = read_head_line(reader, stop, deadline)?;
    let mut skipped = 0;
    while request_line.is_empty() {
        skipped += 1;
        if skipped > 4 {
            return Err(RequestError::Malformed("blank request".into()));
        }
        request_line = read_head_line(reader, stop, deadline)?;
    }

    let (method, path, query, version) = parse_request_line(&request_line)?;

    let mut headers = BTreeMap::new();
    let mut head_bytes = request_line.len();
    loop {
        let hline = read_head_line(reader, stop, deadline)?;
        if hline.is_empty() {
            break;
        }
        head_bytes += hline.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(RequestError::HeadTooLarge("request head too large".into()));
        }
        insert_header_line(&mut headers, &hline);
    }

    let len = content_length(&headers, max_body_bytes)?;
    let mut body = vec![0u8; len];
    if len > 0 {
        read_body(reader, &mut body, stop, deadline)?;
    }
    Ok(HttpRequest {
        method,
        path,
        query,
        headers,
        body,
        version,
    })
}

/// Parse a request line into (method, path, decoded query, version).
/// Shared by the blocking reader and the reactor's incremental parser so
/// both transports accept exactly the same dialect.
pub(crate) fn parse_request_line(
    request_line: &str,
) -> Result<(String, String, BTreeMap<String, String>, String), RequestError> {
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing method".into()))?
        .to_owned();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing path".into()))?
        .to_owned();
    let version = match parts.next() {
        None => "HTTP/1.0".to_owned(), // HTTP/0.9-style simple request
        Some(v) if v.starts_with("HTTP/") => v.to_owned(),
        Some(v) => {
            return Err(RequestError::Malformed(format!("bad version {v:?}")));
        }
    };
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (target, None),
    };
    let mut query = BTreeMap::new();
    if let Some(q) = query_str {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            match pair.split_once('=') {
                Some((k, v)) => {
                    query.insert(
                        coin_wrapper::web::url_decode(k),
                        coin_wrapper::web::url_decode(v),
                    );
                }
                None => {
                    query.insert(coin_wrapper::web::url_decode(pair), String::new());
                }
            }
        }
    }
    Ok((method, path, query, version))
}

/// Fold one `Name: value` line into the (lower-cased) header map.
pub(crate) fn insert_header_line(headers: &mut BTreeMap<String, String>, line: &str) {
    if let Some((k, v)) = line.split_once(':') {
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_owned());
    }
}

/// Decode and bound the `Content-Length` header.
pub(crate) fn content_length(
    headers: &BTreeMap<String, String>,
    max_body_bytes: usize,
) -> Result<usize, RequestError> {
    let len: usize = match headers.get("content-length") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| RequestError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if len > max_body_bytes {
        return Err(RequestError::TooLarge(format!(
            "body of {len} bytes exceeds the {max_body_bytes}-byte limit"
        )));
    }
    Ok(len)
}

/// The terminal chunk of a chunked body: its presence is what tells the
/// peer the stream ended cleanly rather than being cut off.
pub(crate) const CHUNK_TERMINATOR: &[u8] = b"0\r\n\r\n";

/// Frame one chunk of body bytes for `Transfer-Encoding: chunked`.
/// Never called with an empty chunk (that would encode the terminator).
pub(crate) fn encode_chunk(bytes: &[u8]) -> Vec<u8> {
    debug_assert!(!bytes.is_empty());
    let mut out = format!("{:x}\r\n", bytes.len()).into_bytes();
    out.extend_from_slice(bytes);
    out.extend_from_slice(b"\r\n");
    out
}

/// Serialize the head of a streamed (chunked) response. The body follows
/// as chunk frames; there is no `Content-Length`.
pub(crate) fn encode_stream_head(resp: &HttpResponse, keep_alive: bool) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n",
        resp.status,
        resp.status_text(),
        resp.content_type,
    );
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    head.into_bytes()
}

/// How a streamed response ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StreamOutcome {
    /// Terminal chunk written: the peer has a complete body and a
    /// keep-alive connection may serve the next request.
    Clean,
    /// Producer error or write failure: the connection must close without
    /// the terminal chunk so the peer sees the truncation.
    Aborted,
}

/// Drive a streamed response over a blocking socket: write the chunked
/// head, then pull/frame/write until the producer finishes. Used by the
/// threaded transport (the reactor frames chunks in its event loop
/// instead). A write failure flips the producer's cancel flag — on this
/// transport a disconnect is only *observed* through the failed write —
/// and aborts.
pub(crate) fn write_stream_response(
    mut sock: &TcpStream,
    resp: &mut HttpResponse,
    keep_alive: bool,
) -> StreamOutcome {
    let Some(mut body) = resp.stream.take() else {
        return StreamOutcome::Aborted;
    };
    let abort = |body: &StreamBody| {
        body.cancel_flag().store(true, Ordering::SeqCst);
        StreamOutcome::Aborted
    };
    if sock
        .write_all(&encode_stream_head(resp, keep_alive))
        .is_err()
    {
        return abort(&body);
    }
    loop {
        if body.cancel_flag().load(Ordering::SeqCst) {
            return StreamOutcome::Aborted;
        }
        match body.pull() {
            Ok(Some(chunk)) => {
                if chunk.is_empty() {
                    continue; // an empty frame would read as the terminator
                }
                if sock.write_all(&encode_chunk(&chunk)).is_err() {
                    return abort(&body);
                }
            }
            Ok(None) => {
                if sock.write_all(CHUNK_TERMINATOR).is_err() || sock.flush().is_err() {
                    return abort(&body);
                }
                return StreamOutcome::Clean;
            }
            Err(_) => return abort(&body),
        }
    }
}

/// Serialize a response (head + body) into wire bytes. Responses are
/// always length-framed so keep-alive peers can find the next response.
pub(crate) fn encode_response(resp: &HttpResponse, keep_alive: bool) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        resp.status_text(),
        resp.content_type,
        resp.body.len()
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(&resp.body);
    bytes
}

fn write_response(
    mut stream: &TcpStream,
    resp: &HttpResponse,
    keep_alive: bool,
) -> Result<(), HttpError> {
    stream.write_all(&encode_response(resp, keep_alive))?;
    stream.flush()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A decoded response: status, headers (lower-cased names), body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body, mapping any non-2xx status to [`HttpError::Status`].
    pub fn into_body(self) -> Result<Vec<u8>, HttpError> {
        if (200..300).contains(&self.status) {
            Ok(self.body)
        } else {
            Err(HttpError::Status(
                self.status,
                String::from_utf8_lossy(&self.body).into_owned(),
            ))
        }
    }
}

/// Read one response off `reader`. Returns the response plus whether the
/// connection must be treated as closed afterwards.
fn read_response(reader: &mut BufReader<TcpStream>) -> Result<(ClientResponse, bool), HttpError> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(HttpError::Io(std::io::Error::new(
            ErrorKind::UnexpectedEof,
            "connection closed before status line",
        )));
    }
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or_default().to_owned();
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {status_line:?}")))?;

    let mut headers = BTreeMap::new();
    loop {
        let mut hline = String::new();
        reader.read_line(&mut hline)?;
        let trimmed = hline.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((k, v)) = trimmed.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_owned());
        }
    }

    let content_length: Option<usize> = headers.get("content-length").and_then(|v| v.parse().ok());
    let chunked = headers
        .get("transfer-encoding")
        .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"));
    let mut body = Vec::new();
    let mut close = match headers.get("connection") {
        Some(c) if c.eq_ignore_ascii_case("close") => true,
        Some(c) if c.eq_ignore_ascii_case("keep-alive") => false,
        _ => version != "HTTP/1.1",
    };
    if chunked {
        // Chunked framing: EOF before the terminal chunk surfaces as an
        // error — a truncated stream must never pass for a complete body.
        read_chunked_body(reader, &mut body)?;
    } else {
        match content_length {
            Some(n) => {
                body.resize(n, 0);
                reader.read_exact(&mut body)?;
            }
            None => {
                // No framing: the body runs to EOF and the socket is spent.
                reader.read_to_end(&mut body)?;
                close = true;
            }
        }
    }
    Ok((
        ClientResponse {
            status,
            headers,
            body,
        },
        close,
    ))
}

/// Decode a `Transfer-Encoding: chunked` body into `body`, consuming the
/// terminal chunk and any trailer section. An EOF anywhere before the
/// terminal chunk is an [`HttpError::Io`] (truncated stream).
fn read_chunked_body(
    reader: &mut BufReader<TcpStream>,
    body: &mut Vec<u8>,
) -> Result<(), HttpError> {
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            return Err(HttpError::Io(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "stream truncated before the terminal chunk",
            )));
        }
        // Chunk extensions (after ';') are tolerated and ignored.
        let size_str = size_line.trim().split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| HttpError::Malformed(format!("bad chunk size {size_line:?}")))?;
        if size == 0 {
            break;
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader.read_exact(&mut body[start..])?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(HttpError::Malformed("chunk missing CRLF".into()));
        }
    }
    // Trailer section: lines until the blank terminator (ignored).
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line.trim_end().is_empty() {
            break;
        }
    }
    Ok(())
}

/// A persistent HTTP/1.1 client: one socket reused across requests, with
/// a transparent one-shot reconnect when the pooled socket went stale
/// (e.g. the server's idle timeout closed it between requests).
///
/// # Retry policy
///
/// [`HttpClient::send`] retries **exactly once**, and **only** when both
/// hold:
///
/// 1. the failure is the stale-pooled-socket signature — a *reused*
///    connection that the peer closed before any response bytes
///    arrived (never a read timeout: the server may still be executing
///    the request, and re-sending would double the work);
/// 2. the method is **idempotent** (`GET` / `HEAD`). A `POST` is never
///    retried implicitly: the server may have received and acted on it
///    before the connection died, and replaying a non-idempotent
///    request would repeat its effect.
///
/// Callers that *know* a specific `POST` is safe to replay (the
/// mediation protocol's `POST /query` is read-only) opt in per call with
/// [`HttpClient::send_assuming_idempotent`] — the opt-in is an assertion
/// about the endpoint, made where that knowledge lives, instead of a
/// blanket client-wide gamble.
///
/// ```
/// use coin_server::http::{serve, HttpClient, HttpResponse};
/// use std::sync::Arc;
///
/// let server = serve("127.0.0.1:0", 2, Arc::new(|_req| {
///     HttpResponse::ok("text/plain", "pong")
/// })).unwrap();
///
/// let mut client = HttpClient::new(server.addr);
/// for _ in 0..3 {
///     assert_eq!(client.request("GET", "/ping", None, &[]).unwrap(), b"pong");
/// }
/// // All three requests reused one TCP connection.
/// assert_eq!(client.connects(), 1);
/// server.stop();
/// ```
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    read_timeout: Duration,
    stream: Option<BufReader<TcpStream>>,
    connects: u64,
    requests: u64,
}

impl HttpClient {
    pub fn new(addr: SocketAddr) -> HttpClient {
        HttpClient {
            addr,
            read_timeout: Duration::from_secs(30),
            stream: None,
            connects: 0,
            requests: 0,
        }
    }

    pub fn with_read_timeout(mut self, read_timeout: Duration) -> HttpClient {
        self.read_timeout = read_timeout;
        self
    }

    /// TCP connections opened so far (1 for an all-keep-alive exchange).
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Requests sent so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Drop the pooled socket (the next request reconnects).
    pub fn disconnect(&mut self) {
        self.stream = None;
    }

    /// Issue a request and decode the full response. Non-2xx statuses are
    /// returned as responses, not errors — use [`ClientResponse::into_body`]
    /// or [`HttpClient::request`] for status-checked calls.
    ///
    /// Reconnects transparently (once) when a *reused* pooled socket
    /// turns out to be disconnected before any response bytes arrive —
    /// but only for idempotent methods (`GET` / `HEAD`); see the
    /// [type-level retry policy](HttpClient#retry-policy). For read-only
    /// `POST` endpoints use [`HttpClient::send_assuming_idempotent`].
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> Result<ClientResponse, HttpError> {
        let idempotent = method.eq_ignore_ascii_case("GET") || method.eq_ignore_ascii_case("HEAD");
        self.send_with_retry(method, path, content_type, body, idempotent)
    }

    /// [`HttpClient::send`], with the caller asserting the request is
    /// safe to replay regardless of method — use for endpoints known to
    /// be read-only (e.g. the mediation protocol's `POST /query`), where
    /// the stale-pooled-socket reconnect is as safe as for a `GET`.
    pub fn send_assuming_idempotent(
        &mut self,
        method: &str,
        path: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> Result<ClientResponse, HttpError> {
        self.send_with_retry(method, path, content_type, body, true)
    }

    fn send_with_retry(
        &mut self,
        method: &str,
        path: &str,
        content_type: Option<&str>,
        body: &[u8],
        may_retry: bool,
    ) -> Result<ClientResponse, HttpError> {
        let mut retried = false;
        loop {
            let reused = self.stream.is_some();
            match self.try_send(method, path, content_type, body) {
                Ok(response) => return Ok(response),
                // Retry only the stale-pooled-socket signature: the peer
                // closed the connection (e.g. its idle timeout fired)
                // before any response bytes arrived. A read *timeout* is
                // explicitly not retried — the server has the request and
                // may still be executing it; re-sending would double the
                // work. Non-idempotent requests are never retried here.
                Err(HttpError::Io(e)) if may_retry && reused && !retried && is_disconnect(&e) => {
                    self.stream = None;
                    retried = true;
                }
                Err(e) => {
                    self.stream = None;
                    return Err(e);
                }
            }
        }
    }

    /// [`HttpClient::send`] with non-2xx statuses mapped to
    /// [`HttpError::Status`].
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> Result<Vec<u8>, HttpError> {
        self.send(method, path, content_type, body)?.into_body()
    }

    fn try_send(
        &mut self,
        method: &str,
        path: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> Result<ClientResponse, HttpError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            let _ = stream.set_nodelay(true);
            self.connects += 1;
            self.stream = Some(BufReader::new(stream));
        }
        let reader = self.stream.as_mut().expect("just connected");
        {
            let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
            if let Some(ct) = content_type {
                head.push_str(&format!("Content-Type: {ct}\r\n"));
            }
            head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
            let mut stream = reader.get_ref();
            stream.write_all(head.as_bytes())?;
            stream.write_all(body)?;
            stream.flush()?;
        }
        self.requests += 1;
        let (response, close) = read_response(reader)?;
        if close {
            self.stream = None;
        }
        Ok(response)
    }
}

/// Issue a one-shot request to `addr` (e.g. `127.0.0.1:4321`) on a fresh
/// connection with `Connection: close`. Returns status+body; a non-2xx
/// status is an [`HttpError::Status`].
pub fn request(
    addr: &SocketAddr,
    method: &str,
    path: &str,
    content_type: Option<&str>,
    body: &[u8],
) -> Result<Vec<u8>, HttpError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if let Some(ct) = content_type {
        head.push_str(&format!("Content-Type: {ct}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let (response, _close) = read_response(&mut reader)?;
    response.into_body()
}

/// GET helper.
pub fn get(addr: &SocketAddr, path: &str) -> Result<Vec<u8>, HttpError> {
    request(addr, "GET", path, None, &[])
}

/// POST helper.
pub fn post(
    addr: &SocketAddr,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> Result<Vec<u8>, HttpError> {
    request(addr, "POST", path, Some(content_type), body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_handler() -> Handler {
        Arc::new(
            |req: &HttpRequest| match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/hello") => HttpResponse::ok(
                    "text/plain",
                    format!("hi {}", req.query.get("name").map_or("?", String::as_str)),
                ),
                ("POST", "/echo") => HttpResponse::ok("application/octet-stream", req.body.clone()),
                _ => HttpResponse::error(404, "nope"),
            },
        )
    }

    fn echo_server() -> ServerHandle {
        serve("127.0.0.1:0", 2, echo_handler()).unwrap()
    }

    #[test]
    fn get_roundtrip() {
        let server = echo_server();
        let body = get(&server.addr, "/hello?name=coin").unwrap();
        assert_eq!(body, b"hi coin");
        server.stop();
    }

    #[test]
    fn post_roundtrip_binary() {
        let server = echo_server();
        let payload: Vec<u8> = (0u8..100).collect();
        let body = post(&server.addr, "/echo", "application/octet-stream", &payload).unwrap();
        assert_eq!(body, payload);
        server.stop();
    }

    #[test]
    fn not_found_is_status_error() {
        let server = echo_server();
        match get(&server.addr, "/nope") {
            Err(HttpError::Status(404, _)) => {}
            other => panic!("{other:?}"),
        }
        server.stop();
    }

    #[test]
    fn concurrent_requests() {
        let server = echo_server();
        let addr = server.addr;
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let body = get(&addr, &format!("/hello?name=t{i}")).unwrap();
                    assert_eq!(body, format!("hi t{i}").into_bytes());
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        server.stop();
    }

    #[test]
    fn query_decoding() {
        let server = serve(
            "127.0.0.1:0",
            1,
            Arc::new(|req: &HttpRequest| HttpResponse::ok("text/plain", req.query["q"].clone())),
        )
        .unwrap();
        let body = get(&server.addr, "/x?q=a+b%3Dc").unwrap();
        assert_eq!(body, b"a b=c");
        server.stop();
    }

    #[test]
    fn keep_alive_reuses_one_socket() {
        let server = echo_server();
        let mut client = HttpClient::new(server.addr);
        for i in 0..10 {
            let body = client
                .request("GET", &format!("/hello?name=k{i}"), None, &[])
                .unwrap();
            assert_eq!(body, format!("hi k{i}").into_bytes());
        }
        assert_eq!(client.connects(), 1, "all requests on one connection");
        assert_eq!(client.requests(), 10);
        let m = server.metrics();
        assert_eq!(m.requests, 10);
        assert!(m.keepalive_reuses >= 9, "{m:?}");
        server.stop();
    }

    #[test]
    fn connection_close_is_honored() {
        let server = echo_server();
        // The one-shot helpers send `Connection: close`; each request must
        // land on a fresh accepted connection.
        get(&server.addr, "/hello?name=a").unwrap();
        get(&server.addr, "/hello?name=b").unwrap();
        let m = server.metrics();
        assert_eq!(m.connections_accepted, 2);
        assert_eq!(m.keepalive_reuses, 0);
        server.stop();
    }

    #[test]
    fn overload_sheds_with_503() {
        // One worker, queue of one: a slow in-service request + a queued
        // connection exhaust the budget; the third connection is shed.
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Mutex::new(release_rx);
        let server = serve_with(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                queue_depth: 1,
                max_connections: 2,
                ..ServerConfig::default()
            },
            Arc::new(move |_req: &HttpRequest| {
                let _ = entered_tx.send(());
                let _ = release_rx.lock().unwrap().recv();
                HttpResponse::ok("text/plain", "slow")
            }),
        )
        .unwrap();
        let addr = server.addr;
        let t1 = std::thread::spawn(move || get(&addr, "/a"));
        entered_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("first request reaches the worker");
        let t2 = std::thread::spawn(move || get(&addr, "/b"));
        // Wait until the second connection is admitted (it parks in the
        // queue: the only worker is blocked inside the handler).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.metrics().open_connections < 2 || server.metrics().requests < 2 {
            assert!(std::time::Instant::now() < deadline, "admissions stalled");
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut probe = HttpClient::new(addr);
        let resp = probe.send("GET", "/c", None, &[]).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(
            resp.headers.get("retry-after").map(String::as_str),
            Some("1")
        );
        assert!(server.metrics().connections_shed >= 1);
        // Release both slow requests; the server drains and recovers.
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        t1.join().unwrap().unwrap();
        t2.join().unwrap().unwrap();
        // A fresh request (with its own release) succeeds: recovered.
        release_tx.send(()).unwrap();
        let body = get(&addr, "/done");
        assert!(body.is_ok(), "{body:?}");
        server.stop();
    }

    #[test]
    fn malformed_request_gets_400_and_worker_survives() {
        let server = serve("127.0.0.1:0", 1, echo_handler()).unwrap();
        let mut raw = TcpStream::connect(server.addr).unwrap();
        raw.write_all(b"NONSENSE\r\n\r\n").unwrap();
        raw.flush().unwrap();
        let mut resp = String::new();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut reader = BufReader::new(raw);
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("400"), "{resp}");
        drop(reader);
        // The single worker must still serve the next connection.
        let body = get(&server.addr, "/hello?name=alive").unwrap();
        assert_eq!(body, b"hi alive");
        assert_eq!(server.metrics().malformed_requests, 1);
        server.stop();
    }
}
