//! The mediation service protocol.
//!
//! The receiver-side API of the prototype, tunneled in HTTP (paper §2,
//! Figure 1). Endpoints:
//!
//! * `GET /dictionary` — schema information for all registered sources
//!   (the dictionary service);
//! * `POST /query` — `{"sql": …, "context": …, "mode": "mediated"|"naive"}`
//!   → columns, rows, the mediated SQL, the mediation explanation and
//!   execution statistics; mediated responses also report whether the
//!   prepared-query cache served the compile side (`"cache":
//!   "hit"|"miss"`), the model `"epoch"`, and the cumulative
//!   `"cache_hits"`/`"cache_misses"` counters. Result rows stream from
//!   the operator pipeline as a chunked response by default (`"stream":
//!   false` opts back into a single materialized body — the bytes are
//!   identical either way); `"max_rows"`/`"max_bytes"` cap the result
//!   and set `"truncated": true` when rows were dropped;
//! * `GET /stats` — cumulative prepared-query cache counters and the
//!   current model epoch;
//! * `GET /qbe`, `POST /qbe` — the HTML Query-By-Example interface
//!   ([`crate::qbe`]).
//!
//! Values travel as tagged JSON arrays so 64-bit integers survive:
//! `null`, `["b",true]`, `["i","42"]`, `["f",2.5]`, `["s","text"]`.

use std::sync::atomic::AtomicBool;
use std::sync::{Arc, RwLock};

use coin_core::{CoinSystem, MediatedRows, PlanRows};
use coin_rel::{CancelToken, Schema, Table, Value};

use crate::http::{
    serve_with, Handler, HttpError, HttpRequest, HttpResponse, ServerConfig, ServerHandle,
    StreamBody,
};
use crate::json::{parse, Json, JsonBuf};

/// A mediation system shared between the server and administrative
/// writers: queries take the read lock for the whole request, `add_*`
/// mutations take the write lock, so a response is always computed — and
/// its `plan_epoch` reported — against one coherent model state.
pub type SharedSystem = Arc<RwLock<CoinSystem>>;

/// Encode a value for the wire.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Arr(vec![Json::str("b"), Json::Bool(*b)]),
        Value::Int(i) => Json::Arr(vec![Json::str("i"), Json::Str(i.to_string())]),
        Value::Float(f) => Json::Arr(vec![Json::str("f"), Json::Num(*f)]),
        Value::Str(s) => Json::Arr(vec![Json::str("s"), Json::str(s)]),
    }
}

/// Decode a wire value.
pub fn json_to_value(j: &Json) -> Option<Value> {
    match j {
        Json::Null => Some(Value::Null),
        Json::Arr(items) => {
            let tag = items.first()?.as_str()?;
            match tag {
                "b" => Some(Value::Bool(items.get(1)?.as_bool()?)),
                "i" => Some(Value::Int(items.get(1)?.as_str()?.parse().ok()?)),
                "f" => Some(Value::Float(items.get(1)?.as_f64()?)),
                "s" => Some(Value::str(items.get(1)?.as_str()?)),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Serialize a value straight into an output buffer in the tagged wire
/// format — the allocation-lean counterpart of [`value_to_json`] used on
/// the `/query` hot path (no `Json` nodes, no intermediate strings).
pub fn write_value(v: &Value, out: &mut JsonBuf) {
    match v {
        Value::Null => out.null(),
        Value::Bool(b) => out.begin_arr().str_val("b").bool_val(*b).end_arr(),
        Value::Int(i) => out.begin_arr().str_val("i").int_str(*i).end_arr(),
        Value::Float(f) => out.begin_arr().str_val("f").num(*f).end_arr(),
        Value::Str(s) => out.begin_arr().str_val("s").str_val(s).end_arr(),
    };
}

/// Serialize a result table's `"columns"` and `"rows"` fields into an
/// **open object** on `out` (the caller opens/closes the object and may
/// append further fields). Replaces the per-row/per-cell [`Json`] tree of
/// [`table_to_json`] on the `/query` response path: the whole result set
/// is written into one reusable output buffer.
pub fn write_table(t: &Table, out: &mut JsonBuf) {
    write_columns_open_rows(&t.schema, out);
    for r in &t.rows {
        out.begin_arr();
        for v in r {
            write_value(v, out);
        }
        out.end_arr();
    }
    out.end_arr();
}

/// Write the `"columns"` field and *open* the `"rows"` array on `out`
/// (the caller appends row arrays and closes it). Shared between the
/// materialized writer above and the incremental [`QueryStream`], so the
/// two produce byte-identical documents.
fn write_columns_open_rows(schema: &Schema, out: &mut JsonBuf) {
    out.key("columns").begin_arr();
    for c in &schema.columns {
        out.begin_obj();
        out.key("name").str_val(&c.name);
        out.key("type").str_val(c.ty.name());
        out.end_obj();
    }
    out.end_arr();
    out.key("rows").begin_arr();
}

/// How many rows are sampled (evenly spaced) when estimating a table's
/// serialized size.
const SIZE_SAMPLE_ROWS: usize = 16;

/// Rough serialized-size estimate for a result table, used to size the
/// output buffer in one allocation (tag + punctuation overhead per cell
/// plus string payloads are the dominant terms).
///
/// The string payload is sized from the *widest of up to
/// [`SIZE_SAMPLE_ROWS`] evenly-spaced sample rows*, not from row 0: wide
/// string tables whose first row happens to be narrow used to undersize
/// the buffer badly and pay repeated reallocation-and-copy on the hot
/// path. Taking the sampled maximum deliberately over-provisions skewed
/// tables a little — a single allocation slightly too large beats
/// doubling an initially too-small one.
fn estimated_table_bytes(t: &Table) -> usize {
    let cells: usize = t.rows.len() * t.schema.len();
    let strings: usize = if t.rows.is_empty() {
        0
    } else {
        let samples = t.rows.len().min(SIZE_SAMPLE_ROWS);
        let step = t.rows.len() / samples;
        let widest: usize = (0..samples)
            .map(|i| {
                t.rows[i * step]
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => s.len(),
                        _ => 0,
                    })
                    .sum::<usize>()
            })
            .max()
            .unwrap_or(0);
        widest * t.rows.len()
    };
    let names: usize = t.schema.columns.iter().map(|c| c.name.len()).sum();
    256 + t.schema.len() * 32 + names + cells * 12 + strings
}

/// Encode a result table.
pub fn table_to_json(t: &Table) -> Json {
    Json::obj([
        (
            "columns",
            Json::Arr(
                t.schema
                    .columns
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("name", Json::str(&c.name)),
                            ("type", Json::str(c.ty.name())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "rows",
            Json::Arr(
                t.rows
                    .iter()
                    .map(|r| Json::Arr(r.iter().map(value_to_json).collect()))
                    .collect(),
            ),
        ),
    ])
}

/// Rows per emitted chunk on the streamed `/query` path: small enough to
/// keep the transport pipeline busy, large enough that framing overhead
/// (hex length lines, channel messages) is noise.
const STREAM_BATCH_ROWS: usize = 256;

/// Row/byte caps for one `/query` response, taken from the request's
/// optional `"max_rows"` / `"max_bytes"` fields (0 or absent = unlimited).
#[derive(Clone, Copy, Default, PartialEq, Eq)]
struct Limits {
    max_rows: u64,
    max_bytes: u64,
}

impl Limits {
    fn from_doc(doc: &Json) -> Result<Limits, String> {
        let field = |key: &str| -> Result<u64, String> {
            match doc.get(key) {
                None => Ok(0),
                Some(j) => {
                    let n = j
                        .as_f64()
                        .ok_or_else(|| format!("{key:?} must be a number"))?;
                    if n < 0.0 || n.fract() != 0.0 {
                        return Err(format!("{key:?} must be a non-negative integer"));
                    }
                    Ok(n as u64)
                }
            }
        };
        Ok(Limits {
            max_rows: field("max_rows")?,
            max_bytes: field("max_bytes")?,
        })
    }

    fn unlimited(&self) -> bool {
        *self == Limits::default()
    }
}

/// The row pipeline behind one `/query` response.
enum RowSource {
    Naive { rows: PlanRows, remote_queries: u64 },
    Mediated(Box<MediatedRows>),
}

impl RowSource {
    fn schema(&self) -> &Schema {
        match self {
            RowSource::Naive { rows, .. } => rows.schema(),
            RowSource::Mediated(rows) => rows.schema(),
        }
    }

    fn next(&mut self) -> Result<Option<coin_rel::Row>, String> {
        match self {
            RowSource::Naive { rows, .. } => rows.next().map_err(|e| e.to_string()),
            RowSource::Mediated(rows) => rows.next().map_err(|e| e.to_string()),
        }
    }
}

/// Incremental `/query` response writer: pulls rows from a live operator
/// pipeline and emits the response document one row batch at a time.
///
/// Produces the exact byte sequence of the materialized path (same
/// [`JsonBuf`] call sequence), so a chunked response reassembles to the
/// identical body. Rows never exist in memory all at once: peak memory is
/// one batch plus whatever the operators themselves hold.
struct QueryStream {
    source: RowSource,
    buf: JsonBuf,
    limits: Limits,
    /// Body bytes already handed to the transport.
    emitted: u64,
    rows_out: u64,
    truncated: bool,
    started: bool,
    done: bool,
}

impl QueryStream {
    fn new(source: RowSource, limits: Limits) -> QueryStream {
        QueryStream {
            source,
            buf: JsonBuf::new(),
            limits,
            emitted: 0,
            rows_out: 0,
            truncated: false,
            started: false,
            done: false,
        }
    }

    /// Produce the next batch of body bytes (`None` once the document is
    /// complete). An `Err` means the pipeline failed mid-stream; the
    /// transport closes the connection without the terminal chunk so the
    /// client can detect the truncation.
    fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, String> {
        if self.done {
            return Ok(None);
        }
        if !self.started {
            self.started = true;
            self.buf.begin_obj();
            write_columns_open_rows(self.source.schema(), &mut self.buf);
        }
        for _ in 0..STREAM_BATCH_ROWS {
            if self.limits.max_rows > 0 && self.rows_out >= self.limits.max_rows {
                // Only report truncation if a row was actually dropped.
                self.truncated = self.source.next()?.is_some();
                return self.finish();
            }
            let Some(row) = self.source.next()? else {
                return self.finish();
            };
            self.buf.begin_arr();
            for v in &row {
                write_value(v, &mut self.buf);
            }
            self.buf.end_arr();
            self.rows_out += 1;
            // Row-granular soft cap: the body may overshoot `max_bytes`
            // by at most one row plus the fixed tail.
            if self.limits.max_bytes > 0
                && self.emitted + self.buf.as_str().len() as u64 >= self.limits.max_bytes
            {
                self.truncated = self.source.next()?.is_some();
                return self.finish();
            }
        }
        Ok(Some(self.take_bytes()))
    }

    /// Close the rows array, append the tail fields, emit the remainder.
    fn finish(&mut self) -> Result<Option<Vec<u8>>, String> {
        self.buf.end_arr();
        match &self.source {
            RowSource::Naive { remote_queries, .. } => {
                self.buf.key("remote_queries").num(*remote_queries as f64);
            }
            RowSource::Mediated(rows) => {
                self.buf
                    .key("mediated_sql")
                    .str_val(&rows.mediated().query.to_string());
                self.buf
                    .key("explanation")
                    .str_val(&rows.mediated().explain());
                self.buf
                    .key("remote_queries")
                    .num(rows.stats().remote_queries as f64);
                self.buf.key("cache").str_val(rows.cache_status().as_str());
                self.buf.key("epoch").num(rows.stats().plan_epoch as f64);
                self.buf
                    .key("cache_hits")
                    .num(rows.stats().cache_hits as f64);
                self.buf
                    .key("cache_misses")
                    .num(rows.stats().cache_misses as f64);
            }
        }
        if self.truncated {
            self.buf.key("truncated").bool_val(true);
        }
        self.buf.end_obj();
        self.done = true;
        Ok(Some(self.take_bytes()))
    }

    fn take_bytes(&mut self) -> Vec<u8> {
        let chunk = self.buf.take();
        self.emitted += chunk.len() as u64;
        chunk.into_bytes()
    }
}

/// Package a [`QueryStream`] as either a chunked streaming response or
/// (when the client opted out with `"stream": false`) a fully drained
/// conventional body.
fn query_stream_response(
    mut qs: QueryStream,
    stream: bool,
    cancel: Arc<AtomicBool>,
) -> Result<HttpResponse, String> {
    if stream {
        Ok(HttpResponse::streamed(
            "application/json",
            StreamBody::new(cancel, move || qs.next_chunk()),
        ))
    } else {
        let mut out = String::new();
        while let Some(chunk) = qs.next_chunk()? {
            // The machine emits UTF-8 (it writes through `JsonBuf`).
            out.push_str(std::str::from_utf8(&chunk).expect("JsonBuf emits UTF-8"));
        }
        Ok(HttpResponse::json_raw(out))
    }
}

/// Build the protocol handler over a shared system.
pub fn protocol_handler(system: Arc<CoinSystem>) -> Handler {
    Arc::new(move |req: &HttpRequest| dispatch(&system, req))
}

/// Build the protocol handler over a [`SharedSystem`]: each request runs
/// under the read lock, serializing against administrative writes.
pub fn protocol_handler_shared(system: SharedSystem) -> Handler {
    Arc::new(move |req: &HttpRequest| {
        let guard = system.read().unwrap_or_else(|e| e.into_inner());
        dispatch(&guard, req)
    })
}

/// Start the mediation server with default transport settings.
pub fn start_server(system: Arc<CoinSystem>, addr: &str) -> Result<ServerHandle, HttpError> {
    start_server_with(system, addr, ServerConfig::default())
}

/// Start the mediation server with explicit transport settings
/// (keep-alive, worker pool, queue bound, shedding — see
/// [`ServerConfig`]).
pub fn start_server_with(
    system: Arc<CoinSystem>,
    addr: &str,
    config: ServerConfig,
) -> Result<ServerHandle, HttpError> {
    serve_with(addr, config, protocol_handler(system))
}

/// Start the mediation server over a mutable [`SharedSystem`], so
/// administration (`add_source`, `add_context`, …) can interleave with
/// live query traffic through the write lock.
pub fn start_server_shared(
    system: SharedSystem,
    addr: &str,
    config: ServerConfig,
) -> Result<ServerHandle, HttpError> {
    serve_with(addr, config, protocol_handler_shared(system))
}

fn dispatch(system: &CoinSystem, req: &HttpRequest) -> HttpResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/dictionary") => dictionary_response(system),
        ("GET", "/stats") => stats_response(system),
        ("POST", "/query") => match query_response(system, &req.body_str()) {
            Ok(r) => r,
            Err(msg) => HttpResponse::json(&Json::obj([("error", Json::Str(msg))])),
        },
        ("GET", "/qbe") => HttpResponse::html(&crate::qbe::render_form(system)),
        ("POST", "/qbe") => crate::qbe::handle_submission(system, &req.body_str()),
        _ => HttpResponse::error(404, "unknown endpoint"),
    }
}

fn dictionary_response(system: &CoinSystem) -> HttpResponse {
    let listing = system.dictionary().listing();
    let entries: Vec<Json> = listing
        .iter()
        .map(|(source, table, schema)| {
            Json::obj([
                ("source", Json::str(source)),
                ("table", Json::str(table)),
                (
                    "columns",
                    Json::Arr(
                        schema
                            .columns
                            .iter()
                            .map(|c| {
                                let base =
                                    c.name.rsplit_once('.').map_or(c.name.as_str(), |(_, b)| b);
                                Json::obj([
                                    ("name", Json::str(base)),
                                    ("type", Json::str(c.ty.name())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    HttpResponse::json(&Json::obj([("tables", Json::Arr(entries))]))
}

fn stats_response(system: &CoinSystem) -> HttpResponse {
    let cache = system.cache_stats();
    // Per-part model versions: the invalidation granule behind the scalar
    // epoch (which stays a monotone summary for wire compatibility).
    let versions: Vec<(String, Json)> = system
        .versions()
        .iter()
        .map(|(part, v)| (part.to_string(), Json::Num(v as f64)))
        .collect();
    let model_versions = Json::Obj(versions);
    HttpResponse::json(&Json::obj([
        ("epoch", Json::Num(system.epoch() as f64)),
        ("cache_hits", Json::Num(cache.hits as f64)),
        ("cache_misses", Json::Num(cache.misses as f64)),
        ("cache_compiles", Json::Num(cache.compiles as f64)),
        ("cache_invalidations", Json::Num(cache.invalidations as f64)),
        ("cache_evictions", Json::Num(cache.evictions as f64)),
        ("cache_entries", Json::Num(cache.entries as f64)),
        ("cache_capacity", Json::Num(cache.capacity as f64)),
        ("axioms", Json::Num(system.axiom_count() as f64)),
        ("model_versions", model_versions),
    ]))
}

fn query_response(system: &CoinSystem, body: &str) -> Result<HttpResponse, String> {
    let doc = parse(body).map_err(|e| format!("bad request body: {e}"))?;
    let sql = doc
        .get("sql")
        .and_then(Json::as_str)
        .ok_or("missing \"sql\" field")?;
    let mode = doc.get("mode").and_then(Json::as_str).unwrap_or("mediated");
    let stream = doc.get("stream").and_then(Json::as_bool).unwrap_or(true);
    let limits = Limits::from_doc(&doc)?;
    match mode {
        "naive" => {
            if !stream && limits.unlimited() {
                // Materialized path: one table, one presized buffer.
                let (table, stats) = system.query_naive(sql).map_err(|e| e.to_string())?;
                let mut out = JsonBuf::with_capacity(estimated_table_bytes(&table));
                out.begin_obj();
                write_table(&table, &mut out);
                out.key("remote_queries").num(stats.remote_queries as f64);
                out.end_obj();
                return Ok(HttpResponse::json_raw(out.into_string()));
            }
            let flag = Arc::new(AtomicBool::new(false));
            let cancel = CancelToken::from_shared(Arc::clone(&flag));
            let (rows, stats) = system
                .query_naive_stream(sql, Some(cancel))
                .map_err(|e| e.to_string())?;
            let source = RowSource::Naive {
                rows,
                remote_queries: stats.remote_queries as u64,
            };
            query_stream_response(QueryStream::new(source, limits), stream, flag)
        }
        "mediated" | "explain" => {
            let context = doc
                .get("context")
                .and_then(Json::as_str)
                .ok_or("missing \"context\" field")?;
            if mode == "explain" {
                let mediated = system.mediate(sql, context).map_err(|e| e.to_string())?;
                return Ok(HttpResponse::json(&Json::obj([
                    ("mediated_sql", Json::Str(mediated.query.to_string())),
                    ("explanation", Json::Str(mediated.explain())),
                    ("branches", Json::Num(mediated.branches.len() as f64)),
                ])));
            }
            if !stream && limits.unlimited() {
                let answer = system.query(sql, context).map_err(|e| e.to_string())?;
                // Result sets dominate the response; serialize them (and
                // the provenance/statistics fields) directly into one
                // buffer.
                let mut out = JsonBuf::with_capacity(estimated_table_bytes(&answer.table));
                out.begin_obj();
                write_table(&answer.table, &mut out);
                out.key("mediated_sql")
                    .str_val(&answer.mediated.query.to_string());
                out.key("explanation").str_val(&answer.mediated.explain());
                out.key("remote_queries")
                    .num(answer.stats.remote_queries as f64);
                out.key("cache").str_val(answer.cache.as_str());
                out.key("epoch").num(answer.stats.plan_epoch as f64);
                out.key("cache_hits").num(answer.stats.cache_hits as f64);
                out.key("cache_misses")
                    .num(answer.stats.cache_misses as f64);
                out.end_obj();
                return Ok(HttpResponse::json_raw(out.into_string()));
            }
            let flag = Arc::new(AtomicBool::new(false));
            let cancel = CancelToken::from_shared(Arc::clone(&flag));
            let rows = system
                .query_stream(sql, context, Some(cancel))
                .map_err(|e| e.to_string())?;
            let source = RowSource::Mediated(Box::new(rows));
            query_stream_response(QueryStream::new(source, limits), stream, flag)
        }
        other => Err(format!("unknown mode {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_wire_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(i64::MAX),
            Value::Int(-7),
            Value::Float(0.0096),
            Value::str("NTT 日本"),
        ] {
            let j = value_to_json(&v);
            let text = j.to_string();
            let back = json_to_value(&parse(&text).unwrap()).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn large_int_survives() {
        // 2^60 + 1 would lose precision as a JSON double.
        let v = Value::Int((1 << 60) + 1);
        let back = json_to_value(&parse(&value_to_json(&v).to_string()).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn direct_serialization_matches_json_tree() {
        // The buffer-direct writer must produce a document equal to the
        // tree-built one for every value kind, including strings needing
        // escapes and large integers.
        let t = Table::from_rows(
            "x",
            coin_rel::Schema::of(&[
                ("n", coin_rel::ColumnType::Any),
                ("s", coin_rel::ColumnType::Any),
            ]),
            vec![
                vec![Value::Null, Value::str("plain")],
                vec![Value::Bool(false), Value::str("esc\"ape\n通貨")],
                vec![Value::Int((1 << 60) + 1), Value::Float(0.0096)],
                vec![Value::Float(2.0), Value::str("")],
            ],
        );
        let mut buf = JsonBuf::new();
        buf.begin_obj();
        write_table(&t, &mut buf);
        buf.end_obj();
        assert_eq!(parse(buf.as_str()).unwrap(), table_to_json(&t));
    }

    #[test]
    fn size_estimate_covers_wide_string_tables() {
        // Regression: string payloads used to be sized from row 0 alone,
        // so a table whose first row happened to be narrow undersized the
        // buffer by orders of magnitude and paid reallocation-and-copy
        // for the whole serialization. The sampled estimate must be
        // capacity-sufficient (>= the actual serialized size) for string
        // tables of varying row widths.
        let schema = coin_rel::Schema::of(&[
            ("a", coin_rel::ColumnType::Str),
            ("b", coin_rel::ColumnType::Str),
        ]);
        let narrow_first = Table::from_rows(
            "t",
            schema.clone(),
            (0..400)
                .map(|i| {
                    let w = if i == 0 { 0 } else { 200 };
                    vec![
                        Value::Str("x".repeat(w).into()),
                        Value::Str("y".repeat(w).into()),
                    ]
                })
                .collect(),
        );
        let monotone = Table::from_rows(
            "t",
            schema,
            (0..400)
                .map(|i| vec![Value::Str("x".repeat(i).into()), Value::str("fixed")])
                .collect(),
        );
        for t in [narrow_first, monotone] {
            let mut buf = JsonBuf::new();
            buf.begin_obj();
            write_table(&t, &mut buf);
            buf.end_obj();
            let actual = buf.as_str().len();
            let estimated = estimated_table_bytes(&t);
            assert!(
                estimated >= actual,
                "estimate {estimated} under actual {actual} for {} rows",
                t.rows.len()
            );
        }
    }

    #[test]
    fn table_encoding_shape() {
        let t = Table::from_rows(
            "x",
            coin_rel::Schema::of(&[("a", coin_rel::ColumnType::Int)]),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        );
        let j = table_to_json(&t);
        assert_eq!(j.get("rows").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            j.get("columns").unwrap().as_array().unwrap()[0]
                .get("name")
                .unwrap()
                .as_str()
                .unwrap(),
            "a"
        );
    }
}
