//! The mediation service protocol.
//!
//! The receiver-side API of the prototype, tunneled in HTTP (paper §2,
//! Figure 1). Endpoints:
//!
//! * `GET /dictionary` — schema information for all registered sources
//!   (the dictionary service);
//! * `POST /query` — `{"sql": …, "context": …, "mode": "mediated"|"naive"}`
//!   → columns, rows, the mediated SQL, the mediation explanation and
//!   execution statistics; mediated responses also report whether the
//!   prepared-query cache served the compile side (`"cache":
//!   "hit"|"miss"`), the model `"epoch"`, and the cumulative
//!   `"cache_hits"`/`"cache_misses"` counters;
//! * `GET /stats` — cumulative prepared-query cache counters and the
//!   current model epoch;
//! * `GET /qbe`, `POST /qbe` — the HTML Query-By-Example interface
//!   ([`crate::qbe`]).
//!
//! Values travel as tagged JSON arrays so 64-bit integers survive:
//! `null`, `["b",true]`, `["i","42"]`, `["f",2.5]`, `["s","text"]`.

use std::sync::{Arc, RwLock};

use coin_core::CoinSystem;
use coin_rel::{Table, Value};

use crate::http::{
    serve_with, Handler, HttpError, HttpRequest, HttpResponse, ServerConfig, ServerHandle,
};
use crate::json::{parse, Json};

/// A mediation system shared between the server and administrative
/// writers: queries take the read lock for the whole request, `add_*`
/// mutations take the write lock, so a response is always computed — and
/// its `plan_epoch` reported — against one coherent model state.
pub type SharedSystem = Arc<RwLock<CoinSystem>>;

/// Encode a value for the wire.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Arr(vec![Json::str("b"), Json::Bool(*b)]),
        Value::Int(i) => Json::Arr(vec![Json::str("i"), Json::Str(i.to_string())]),
        Value::Float(f) => Json::Arr(vec![Json::str("f"), Json::Num(*f)]),
        Value::Str(s) => Json::Arr(vec![Json::str("s"), Json::Str(s.clone())]),
    }
}

/// Decode a wire value.
pub fn json_to_value(j: &Json) -> Option<Value> {
    match j {
        Json::Null => Some(Value::Null),
        Json::Arr(items) => {
            let tag = items.first()?.as_str()?;
            match tag {
                "b" => Some(Value::Bool(items.get(1)?.as_bool()?)),
                "i" => Some(Value::Int(items.get(1)?.as_str()?.parse().ok()?)),
                "f" => Some(Value::Float(items.get(1)?.as_f64()?)),
                "s" => Some(Value::Str(items.get(1)?.as_str()?.to_owned())),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Encode a result table.
pub fn table_to_json(t: &Table) -> Json {
    Json::obj([
        (
            "columns",
            Json::Arr(
                t.schema
                    .columns
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("name", Json::str(&c.name)),
                            ("type", Json::str(c.ty.name())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "rows",
            Json::Arr(
                t.rows
                    .iter()
                    .map(|r| Json::Arr(r.iter().map(value_to_json).collect()))
                    .collect(),
            ),
        ),
    ])
}

/// Build the protocol handler over a shared system.
pub fn protocol_handler(system: Arc<CoinSystem>) -> Handler {
    Arc::new(move |req: &HttpRequest| dispatch(&system, req))
}

/// Build the protocol handler over a [`SharedSystem`]: each request runs
/// under the read lock, serializing against administrative writes.
pub fn protocol_handler_shared(system: SharedSystem) -> Handler {
    Arc::new(move |req: &HttpRequest| {
        let guard = system.read().unwrap_or_else(|e| e.into_inner());
        dispatch(&guard, req)
    })
}

/// Start the mediation server with default transport settings.
pub fn start_server(system: Arc<CoinSystem>, addr: &str) -> Result<ServerHandle, HttpError> {
    start_server_with(system, addr, ServerConfig::default())
}

/// Start the mediation server with explicit transport settings
/// (keep-alive, worker pool, queue bound, shedding — see
/// [`ServerConfig`]).
pub fn start_server_with(
    system: Arc<CoinSystem>,
    addr: &str,
    config: ServerConfig,
) -> Result<ServerHandle, HttpError> {
    serve_with(addr, config, protocol_handler(system))
}

/// Start the mediation server over a mutable [`SharedSystem`], so
/// administration (`add_source`, `add_context`, …) can interleave with
/// live query traffic through the write lock.
pub fn start_server_shared(
    system: SharedSystem,
    addr: &str,
    config: ServerConfig,
) -> Result<ServerHandle, HttpError> {
    serve_with(addr, config, protocol_handler_shared(system))
}

fn dispatch(system: &CoinSystem, req: &HttpRequest) -> HttpResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/dictionary") => dictionary_response(system),
        ("GET", "/stats") => stats_response(system),
        ("POST", "/query") => match query_response(system, &req.body_str()) {
            Ok(r) => r,
            Err(msg) => HttpResponse::json(&Json::obj([("error", Json::Str(msg))])),
        },
        ("GET", "/qbe") => HttpResponse::html(&crate::qbe::render_form(system)),
        ("POST", "/qbe") => crate::qbe::handle_submission(system, &req.body_str()),
        _ => HttpResponse::error(404, "unknown endpoint"),
    }
}

fn dictionary_response(system: &CoinSystem) -> HttpResponse {
    let listing = system.dictionary().listing();
    let entries: Vec<Json> = listing
        .iter()
        .map(|(source, table, schema)| {
            Json::obj([
                ("source", Json::str(source)),
                ("table", Json::str(table)),
                (
                    "columns",
                    Json::Arr(
                        schema
                            .columns
                            .iter()
                            .map(|c| {
                                let base =
                                    c.name.rsplit_once('.').map_or(c.name.as_str(), |(_, b)| b);
                                Json::obj([
                                    ("name", Json::str(base)),
                                    ("type", Json::str(c.ty.name())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    HttpResponse::json(&Json::obj([("tables", Json::Arr(entries))]))
}

fn stats_response(system: &CoinSystem) -> HttpResponse {
    let cache = system.cache_stats();
    HttpResponse::json(&Json::obj([
        ("epoch", Json::Num(system.epoch() as f64)),
        ("cache_hits", Json::Num(cache.hits as f64)),
        ("cache_misses", Json::Num(cache.misses as f64)),
        ("cache_compiles", Json::Num(cache.compiles as f64)),
        ("cache_invalidations", Json::Num(cache.invalidations as f64)),
        ("cache_evictions", Json::Num(cache.evictions as f64)),
        ("cache_entries", Json::Num(cache.entries as f64)),
        ("cache_capacity", Json::Num(cache.capacity as f64)),
        ("axioms", Json::Num(system.axiom_count() as f64)),
    ]))
}

fn query_response(system: &CoinSystem, body: &str) -> Result<HttpResponse, String> {
    let doc = parse(body).map_err(|e| format!("bad request body: {e}"))?;
    let sql = doc
        .get("sql")
        .and_then(Json::as_str)
        .ok_or("missing \"sql\" field")?;
    let mode = doc.get("mode").and_then(Json::as_str).unwrap_or("mediated");
    match mode {
        "naive" => {
            let (table, stats) = system.query_naive(sql).map_err(|e| e.to_string())?;
            let mut out = table_to_json(&table);
            if let Json::Obj(pairs) = &mut out {
                pairs.push((
                    "remote_queries".into(),
                    Json::Num(stats.remote_queries as f64),
                ));
            }
            Ok(HttpResponse::json(&out))
        }
        "mediated" | "explain" => {
            let context = doc
                .get("context")
                .and_then(Json::as_str)
                .ok_or("missing \"context\" field")?;
            if mode == "explain" {
                let mediated = system.mediate(sql, context).map_err(|e| e.to_string())?;
                return Ok(HttpResponse::json(&Json::obj([
                    ("mediated_sql", Json::Str(mediated.query.to_string())),
                    ("explanation", Json::Str(mediated.explain())),
                    ("branches", Json::Num(mediated.branches.len() as f64)),
                ])));
            }
            let answer = system.query(sql, context).map_err(|e| e.to_string())?;
            let mut out = table_to_json(&answer.table);
            if let Json::Obj(pairs) = &mut out {
                pairs.push((
                    "mediated_sql".into(),
                    Json::Str(answer.mediated.query.to_string()),
                ));
                pairs.push(("explanation".into(), Json::Str(answer.mediated.explain())));
                pairs.push((
                    "remote_queries".into(),
                    Json::Num(answer.stats.remote_queries as f64),
                ));
                pairs.push(("cache".into(), Json::str(answer.cache.as_str())));
                pairs.push(("epoch".into(), Json::Num(answer.stats.plan_epoch as f64)));
                pairs.push((
                    "cache_hits".into(),
                    Json::Num(answer.stats.cache_hits as f64),
                ));
                pairs.push((
                    "cache_misses".into(),
                    Json::Num(answer.stats.cache_misses as f64),
                ));
            }
            Ok(HttpResponse::json(&out))
        }
        other => Err(format!("unknown mode {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_wire_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(i64::MAX),
            Value::Int(-7),
            Value::Float(0.0096),
            Value::str("NTT 日本"),
        ] {
            let j = value_to_json(&v);
            let text = j.to_string();
            let back = json_to_value(&parse(&text).unwrap()).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn large_int_survives() {
        // 2^60 + 1 would lose precision as a JSON double.
        let v = Value::Int((1 << 60) + 1);
        let back = json_to_value(&parse(&value_to_json(&v).to_string()).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn table_encoding_shape() {
        let t = Table::from_rows(
            "x",
            coin_rel::Schema::of(&[("a", coin_rel::ColumnType::Int)]),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        );
        let j = table_to_json(&t);
        assert_eq!(j.get("rows").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            j.get("columns").unwrap().as_array().unwrap()[0]
                .get("name")
                .unwrap()
                .as_str()
                .unwrap(),
            "a"
        );
    }
}
