//! Offline subset of the `proptest` 1.x API.
//!
//! The workspace builds in environments with no crates.io access, so this
//! vendored crate implements the subset of proptest the test suites use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_filter`,
//!   `prop_recursive`, and `boxed`;
//! * strategies for integer ranges, `Just`, tuples (arity 2–6), regex-like
//!   string literals, [`collection::vec`], [`collection::btree_set`],
//!   [`option::of`], and [`arbitrary::any`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`], and [`prop_assume!`] macros;
//! * [`test_runner::Config`] (exported as `ProptestConfig`).
//!
//! Generation is deterministic: every test function derives its RNG seed
//! from its own name, so a given binary always replays the identical case
//! sequence — CI runs are reproducible by construction.
//!
//! Shrinking is greedy and strategy-directed (no value trees): on a
//! failure, [`strategy::Strategy::shrink`] proposes simpler candidates —
//! integers halve toward the range's lower bound, vectors truncate toward
//! their minimum length and shrink element-wise, tuples shrink
//! component-wise — and the first candidate that still fails becomes the
//! new case, until no candidate fails or
//! [`test_runner::Config::max_shrink_iters`] is exhausted. Combinator
//! strategies (`prop_map`, `prop_oneof!`, `boxed`) do not shrink; their
//! failures report the originally generated inputs.

pub mod test_runner {
    /// Hash a test name into a stable 64-bit seed (FNV-1a).
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Deterministic RNG used for all value generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — it does not count
        /// toward the configured number of cases.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(msg: S) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject<S: Into<String>>(msg: S) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Marker trait mirroring proptest's failure-persistence plug-in
    /// point. The offline runner never persists failures (seeds are
    /// derived from test names, so replay is automatic).
    pub trait FailurePersistence: std::fmt::Debug {}

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug)]
    pub struct Config {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
        /// Accepted for API compatibility; the offline runner is
        /// deterministic and never persists failures.
        pub failure_persistence: Option<Box<dyn FailurePersistence>>,
        /// Bound on candidate re-runs while shrinking a failing case.
        pub max_shrink_iters: u32,
        /// Give up after this many consecutive `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 256,
                failure_persistence: None,
                max_shrink_iters: 1024,
                max_global_rejects: 65_536,
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree; a strategy is a
    /// cloneable generator plus an optional [`Strategy::shrink`] hook
    /// proposing simpler variants of a failing value.
    pub trait Strategy: Clone {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Candidate simplifications of `value`, most aggressive first.
        /// The runner re-runs the failing property on each candidate and
        /// greedily keeps the first one that still fails. The default (no
        /// candidates) makes a strategy opaque to shrinking.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map {
                source: self,
                map: f,
            }
        }

        fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool + Clone,
        {
            Filter {
                source: self,
                whence: whence.into(),
                pred,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = self;
            BoxedStrategy {
                gen: Rc::new(move |rng| this.generate(rng)),
            }
        }

        /// Build a recursive strategy: `self` is the leaf case, `recurse`
        /// wraps an inner strategy into composite cases. `depth` bounds
        /// nesting; `_desired_size`/`_expected_branch_size` are accepted
        /// for API compatibility.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            // Layer the recursive case `depth` times over the leaf,
            // mixing the leaf back in at every level so generated sizes
            // vary instead of always reaching full depth.
            for _ in 0..depth {
                let composite = recurse(strat).boxed();
                strat = Union::new_weighted(vec![(1, leaf.clone()), (2, composite)]).boxed();
            }
            strat
        }
    }

    /// Type-erased strategy; cheap to clone.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `.prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map)(self.source.generate(rng))
        }
    }

    /// `.prop_filter` adapter: regenerates until the predicate passes.
    #[derive(Clone)]
    pub struct Filter<S, F> {
        source: S,
        whence: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool + Clone,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.source.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({:?}): predicate rejected 10000 candidates",
                self.whence
            )
        }
    }

    /// Weighted choice between strategies of a common value type
    /// (the engine behind `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u32,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Union<T> {
            Union {
                arms: self.arms.clone(),
                total_weight: self.total_weight,
            }
        }
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            Union::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
        }

        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!arms.is_empty(), "Union requires at least one arm");
            let total_weight = arms.iter().map(|(w, _)| *w).sum();
            assert!(total_weight > 0, "Union weights must not all be zero");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight as usize) as u32;
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start) as u128;
                    let r = (rng.next_u64() as u128 % span) as i128;
                    ((self.start as i128) + r) as $t
                }

                /// Halving shrinker: the lower bound first, then a
                /// geometric ladder approaching the failing value from
                /// below (`v - span/2, v - span/4, …, v - 1`). Whichever
                /// candidate is the most aggressive jump that still fails
                /// halves the remaining distance to the true failure
                /// boundary, so the greedy driver bisects to the minimal
                /// failing value in O(log² span) candidate runs wherever
                /// the boundary lies in the range.
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let mut out: Vec<$t> = Vec::new();
                    if *value == self.start {
                        return out;
                    }
                    let span = value.abs_diff(self.start) as u128;
                    out.push(self.start);
                    let mut distance = span / 2;
                    while distance > 0 {
                        let c = ((*value as i128) - (distance as i128)) as $t;
                        if c != self.start && !out.contains(&c) {
                            out.push(c);
                        }
                        distance /= 2;
                    }
                    out
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// String literals act as regex-subset strategies, e.g.
    /// `"[a-z]{0,8}"`. Supported syntax: literal characters, `.`,
    /// character classes with ranges and leading `^` negation, and the
    /// quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (starred forms capped at
    /// 8 repetitions).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            super::string::generate_from_regex(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+ );)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone),+
            {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }

                /// Component-wise shrink: each candidate simplifies one
                /// component and keeps the others fixed.
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out: Vec<Self::Value> = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut v = value.clone();
                            v.$idx = cand;
                            out.push(v);
                        }
                    )+
                    out
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }

    /// Strategy for `Option<T>` produced by [`crate::option::of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        pub(crate) inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.bool() {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }

        /// `None` first (the simplest option), then inner shrinks.
        fn shrink(&self, value: &Option<S::Value>) -> Vec<Option<S::Value>> {
            match value {
                None => Vec::new(),
                Some(v) => std::iter::once(None)
                    .chain(self.inner.shrink(v).into_iter().map(Some))
                    .collect(),
            }
        }
    }

    /// Phantom-typed strategy for `any::<T>()` over primitives.
    pub struct AnyStrategy<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> AnyStrategy<T> {
            AnyStrategy {
                _marker: PhantomData,
            }
        }
    }

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// The `proptest!` runner: generates `config.cases` passing cases from
    /// `strategy` and checks each with `run`. On a failure the case is
    /// shrunk via [`shrink_failure`] before panicking, so the reported
    /// inputs are near-minimal. Taking the strategy and the checker
    /// through one generic signature pins the closure's argument type for
    /// inference inside the macro expansion.
    pub fn run_cases<S, F>(
        seed_name: &str,
        test_name: &str,
        config: super::test_runner::Config,
        strategy: S,
        run: F,
    ) where
        S: Strategy,
        F: Fn(&S::Value) -> Result<(), super::test_runner::TestCaseError>,
    {
        use super::test_runner::{seed_from_name, TestCaseError, TestRng};
        let mut rng = TestRng::from_seed(seed_from_name(seed_name));
        let mut passed: u32 = 0;
        let mut rejects: u32 = 0;
        while passed < config.cases {
            let case = strategy.generate(&mut rng);
            // Contain plain panics (assert!/unwrap in the body) the same
            // way prop_assert! failures are handled, so panicking cases
            // are shrunk and reported through the proptest wrapper too.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&case)))
                .unwrap_or_else(|payload| {
                    Err(TestCaseError::Fail(panic_message(payload.as_ref())))
                });
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "proptest {test_name}: too many prop_assume! rejections ({rejects})"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    let (_minimal, msg, iters) =
                        shrink_failure(&strategy, case, msg, config.max_shrink_iters, &run);
                    panic!(
                        "proptest {test_name} failed after {passed} passing case(s) \
                         (shrunk with {iters} candidate run(s)):\n{msg}"
                    );
                }
            }
        }
    }

    /// Greedy shrink driver used by the `proptest!` runner: repeatedly ask
    /// the strategy for candidates and keep the first one that still fails
    /// (rejected candidates — `prop_assume!` — count as passing). A
    /// candidate whose run *panics* (a plain `assert!`/`unwrap` rather
    /// than `prop_assert!`) counts as failing too: the panic is caught so
    /// it cannot escape the driver and clobber the original failure
    /// report. Returns the most-shrunk failing case, its failure message,
    /// and how many candidate re-runs were spent.
    ///
    /// Caught candidate panics still print through the default panic hook
    /// (noisy, but confined to the failing test's captured output). We
    /// deliberately do NOT swap in a silent hook like upstream proptest:
    /// `std::panic::set_hook` is process-global, and the default test
    /// harness runs other tests concurrently on sibling threads — a
    /// silent window here would swallow *their* panic locations too.
    pub fn shrink_failure<S, F>(
        strategy: &S,
        mut case: S::Value,
        mut message: String,
        max_iters: u32,
        run: &F,
    ) -> (S::Value, String, u32)
    where
        S: Strategy,
        F: Fn(&S::Value) -> Result<(), super::test_runner::TestCaseError>,
    {
        use super::test_runner::TestCaseError;
        let mut iters: u32 = 0;
        loop {
            let mut improved = false;
            for candidate in strategy.shrink(&case) {
                if iters >= max_iters {
                    return (case, message, iters);
                }
                iters += 1;
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&candidate)));
                let failure = match outcome {
                    Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => None,
                    Ok(Err(TestCaseError::Fail(msg))) => Some(msg),
                    Err(payload) => Some(panic_message(payload.as_ref())),
                };
                if let Some(msg) = failure {
                    case = candidate;
                    message = msg;
                    improved = true;
                    break;
                }
            }
            if !improved {
                return (case, message, iters);
            }
        }
    }

    /// Render a caught panic payload (`panic!`/`assert!` carry a `String`
    /// or `&str`).
    fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<String>() {
            format!("panicked: {s}")
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            format!("panicked: {s}")
        } else {
            "panicked with a non-string payload".to_owned()
        }
    }
}

pub mod arbitrary {
    use super::strategy::AnyStrategy;
    use std::marker::PhantomData;

    /// Types with a canonical strategy, reachable via [`any`].
    pub trait Arbitrary: Sized {
        fn arbitrary() -> AnyStrategy<Self>;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> AnyStrategy<$t> {
                    AnyStrategy { _marker: PhantomData }
                }
            }
        )*};
    }

    impl_arbitrary!(bool, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// The canonical strategy for `T` — `any::<bool>()` etc.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        T::arbitrary()
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = self.max_exclusive - self.min;
            self.min + rng.below(span.max(1))
        }
    }

    /// Strategy producing `Vec<S::Value>` with a length in `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }

        /// Truncation shrinker (never below the configured minimum
        /// length): straight to the minimum, halfway there, drop-last —
        /// then element-wise shrinks at each position.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            let min = self.size.min;
            let n = value.len();
            if n > min {
                out.push(value[..min].to_vec());
                let half = min + (n - min) / 2;
                if half != min && half != n {
                    out.push(value[..half].to_vec());
                }
                if n - 1 != min && n - 1 != half {
                    out.push(value[..n - 1].to_vec());
                }
            }
            for i in 0..n {
                for cand in self.element.shrink(&value[i]) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing `BTreeSet<S::Value>` with a size in `size`
    /// (best-effort: bounded by the cardinality of the element domain).
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 50 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::strategy::{OptionStrategy, Strategy};

    /// Strategy for `Option<T>`: `None` and `Some` with equal weight.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

mod string {
    use super::test_runner::TestRng;

    /// Generate a string matching a small regex subset (see the
    /// `impl Strategy for &str` docs). Panics on unsupported syntax so
    /// misuse fails loudly instead of producing skewed data.
    pub fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let (emit, next): (Emitter, usize) = match chars[i] {
                '[' => parse_class(&chars, i),
                '.' => (Emitter::Dot, i + 1),
                '\\' => {
                    let c = *chars.get(i + 1).unwrap_or_else(|| {
                        panic!("regex strategy {pattern:?}: dangling backslash")
                    });
                    (Emitter::Lit(c), i + 2)
                }
                '(' | ')' | '|' => {
                    panic!("regex strategy {pattern:?}: groups/alternation not supported")
                }
                c => (Emitter::Lit(c), i + 1),
            };
            // Optional quantifier.
            let (lo, hi, after) = match chars.get(next) {
                Some('{') => parse_counts(&chars, next, pattern),
                Some('?') => (0, 1, next + 1),
                Some('*') => (0, 8, next + 1),
                Some('+') => (1, 8, next + 1),
                _ => (1, 1, next),
            };
            let n = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            for _ in 0..n {
                out.push(emit.pick(rng));
            }
            i = after;
        }
        out
    }

    enum Emitter {
        Lit(char),
        Dot,
        Class(Vec<char>),
    }

    impl Emitter {
        fn pick(&self, rng: &mut TestRng) -> char {
            match self {
                Emitter::Lit(c) => *c,
                Emitter::Dot => {
                    // Printable ASCII minus newline.
                    char::from_u32(0x20 + (rng.next_u64() % 95) as u32).unwrap()
                }
                Emitter::Class(cs) => cs[rng.below(cs.len())],
            }
        }
    }

    fn parse_class(chars: &[char], start: usize) -> (Emitter, usize) {
        let mut i = start + 1;
        let negated = chars.get(i) == Some(&'^');
        if negated {
            i += 1;
        }
        let mut members = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&e| e != ']') {
                let end = chars[i + 2];
                for code in (c as u32)..=(end as u32) {
                    members.push(char::from_u32(code).unwrap());
                }
                i += 3;
            } else {
                members.push(c);
                i += 1;
            }
        }
        assert!(chars.get(i) == Some(&']'), "unterminated character class");
        if negated {
            let complement: Vec<char> = (0x20u32..0x7F)
                .filter_map(char::from_u32)
                .filter(|c| !members.contains(c))
                .collect();
            members = complement;
        }
        assert!(!members.is_empty(), "empty character class");
        (Emitter::Class(members), i + 1)
    }

    fn parse_counts(chars: &[char], open: usize, pattern: &str) -> (usize, usize, usize) {
        let close = (open..chars.len())
            .find(|&j| chars[j] == '}')
            .unwrap_or_else(|| panic!("regex strategy {pattern:?}: unterminated {{}}"));
        let body: String = chars[open + 1..close].iter().collect();
        let (lo, hi) = match body.split_once(',') {
            Some((l, h)) => (
                l.parse().expect("bad lower repetition bound"),
                h.parse().expect("bad upper repetition bound"),
            ),
            None => {
                let n = body.parse().expect("bad repetition count");
                (n, n)
            }
        };
        assert!(lo <= hi, "inverted repetition bounds in regex strategy");
        (lo, hi, close + 1)
    }
}

/// `prop::…` namespace as re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Choose between several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($left), stringify!($right), l, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Define property tests. Each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases. A failing
/// case is shrunk (see [`strategy::Strategy::shrink`]) before the panic,
/// so the reported inputs are near-minimal.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            // All argument strategies combine into one tuple strategy so
            // the shrink driver can simplify any argument of a failing
            // case while holding the others fixed.
            $crate::strategy::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                stringify!($name),
                $config,
                ($($strat,)+),
                |case| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(case);
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    #[test]
    fn regex_strategies_respect_class_and_counts() {
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[abc]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| "abc".contains(c)));
        }
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-zA-Z' ]{0,8}", &mut rng);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphabetic() || c == '\'' || c == ' '));
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let strat = prop::collection::vec(0i64..100, 0..10);
        let mut r1 = crate::test_runner::TestRng::from_seed(99);
        let mut r2 = crate::test_runner::TestRng::from_seed(99);
        for _ in 0..50 {
            assert_eq!(
                Strategy::generate(&strat, &mut r1),
                Strategy::generate(&strat, &mut r2)
            );
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = crate::test_runner::TestRng::from_seed(5);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(Strategy::generate(&strat, &mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(v in prop::collection::btree_set(-20i64..20, 1..6), b in any::<bool>()) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.len() < 6);
            let _ = b;
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..4, b in 0usize..4) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        #[should_panic(expected = "proptest failures_propagate failed")]
        fn failures_propagate(v in 0i64..10) {
            prop_assert!(v < 0, "deliberately failing on {}", v);
        }

        // Shrinking: whatever integer first fails, the halving shrinker
        // must walk it down to the boundary value 10 exactly.
        #[test]
        #[should_panic(expected = "minimal failing value 10")]
        fn integer_failures_shrink_to_boundary(v in 0i64..100_000) {
            prop_assert!(v < 10, "minimal failing value {}", v);
        }

        // Shrinking bisects: a failure boundary far above the range
        // midpoint is still reached exactly within the iteration budget
        // (a naive decrement-by-one tail would run out long before).
        #[test]
        #[should_panic(expected = "minimal failing value 60000")]
        fn integer_shrink_bisects_to_high_boundary(v in 0i64..100_000) {
            prop_assert!(v < 60_000, "minimal failing value {}", v);
        }

        // Shrinking: an overlong vector truncates to the shortest length
        // that still fails, and its elements shrink to the range minimum.
        #[test]
        #[should_panic(expected = "minimal failing vec [0, 0, 0]")]
        fn vec_failures_shrink_to_minimal_length(
            v in prop::collection::vec(0i64..100, 0..10)
        ) {
            prop_assert!(v.len() < 3, "minimal failing vec {:?}", v);
        }

        // Shrinking: candidates that panic outright (plain assert! on a
        // code path only simpler inputs reach) are contained by the
        // driver — the test still reports through the proptest wrapper
        // instead of escaping with the candidate's raw panic.
        #[test]
        #[should_panic(expected = "proptest panicking_candidates_are_contained failed")]
        fn panicking_candidates_are_contained(v in 0i64..100_000) {
            assert!(!(v > 0 && v < 10), "plain panic at {}", v);
            prop_assert!(v < 10, "prop failure at {}", v);
        }

        // A property that fails only via plain assert! (no prop_assert!)
        // is still wrapped in the proptest report and shrunk to the
        // boundary, instead of escaping with the raw panic of the first
        // (large) failing case.
        #[test]
        #[should_panic(expected = "panicked: plain panic at 10")]
        fn plain_panics_are_wrapped_and_shrunk(v in 0i64..100_000) {
            assert!(v < 10, "plain panic at {}", v);
        }
    }

    #[test]
    fn integer_shrink_candidates_stay_in_range() {
        let strat = -50i64..50;
        let mut rng = crate::test_runner::TestRng::from_seed(11);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            for c in strat.shrink(&v) {
                assert!((-50..50).contains(&c), "candidate {c} out of range");
                assert_ne!(c, v, "candidate must differ from the value");
            }
        }
        assert!(strat.shrink(&-50).is_empty(), "lower bound is minimal");
    }

    #[test]
    fn vec_shrink_respects_min_length() {
        let strat = prop::collection::vec(0i64..10, 2..8);
        let mut rng = crate::test_runner::TestRng::from_seed(12);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            for c in strat.shrink(&v) {
                assert!(c.len() >= 2, "candidate {c:?} below minimum length");
                assert!(c.len() <= v.len());
            }
        }
    }
}
