//! Offline subset of the `rand` 0.9 API.
//!
//! The workspace builds in environments with no crates.io access, so this
//! vendored crate provides exactly the surface the benchmarks use:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::random_range` over half-open integer ranges. The generator is
//! SplitMix64 — statistically fine for workload synthesis, not for
//! cryptography.

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in random_range");
                let span = range.end.abs_diff(range.start) as u128;
                // Modulo bias is negligible at bench-workload spans.
                let r = rng.next_u64() as u128 % span;
                ((range.start as i128) + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in random_range");
                let span = (range.end - range.start) as u128;
                range.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0i64..1_000_000),
                b.random_range(0i64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.random_range(0usize..13);
            assert!(u < 13);
        }
    }

    #[test]
    fn negative_ranges_cover_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..200 {
            let v = rng.random_range(-5i32..6);
            seen_neg |= v < 0;
            seen_pos |= v > 0;
        }
        assert!(seen_neg && seen_pos);
    }
}
