//! Offline subset of the `criterion` 0.5 API.
//!
//! The workspace builds in environments with no crates.io access, so this
//! vendored crate provides the surface the benches use: `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are intentionally simple — warm-up, then `sample_size`
//! timed samples, reporting min/mean/max per benchmark. Under
//! `cargo test` (cargo passes `--test` to `harness = false` bench
//! binaries) each benchmark body runs exactly once, as a smoke test, so
//! tier-1 stays fast while `cargo bench` still measures.
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! measured benchmark also appends one JSON object per line to it
//! (`{"group","id","min_s","mean_s","max_s","samples","iters_per_sample"}`),
//! so CI can archive bench results as machine-readable artifacts and
//! later perf work has a trajectory to compare against.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (reported, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// A benchmark identifier: function name + parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as the name argument of `bench_function`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a MeasurementConfig,
    group: String,
    id: String,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.cfg.test_mode {
            black_box(routine());
            println!("test {}/{} ... ok", self.group, self.id);
            return;
        }
        // Warm-up: run until warm_up_time elapses (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_iters == 0 || warm_start.elapsed() < self.cfg.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        // Choose iterations per sample so the whole measurement fits in
        // roughly measurement_time.
        let budget = self.cfg.measurement_time.as_nanos().max(1);
        let per = per_iter.as_nanos().max(1);
        let total_iters = (budget / per).clamp(1, u64::MAX as u128) as u64;
        let iters_per_sample = (total_iters / self.cfg.sample_size as u64).max(1);

        let mut samples = Vec::with_capacity(self.cfg.sample_size);
        for _ in 0..self.cfg.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(f64::total_cmp);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{}/{:<40} [min {} .. mean {} .. max {}] ({} samples x {} iters)",
            self.group,
            self.id,
            fmt_secs(samples[0]),
            fmt_secs(mean),
            fmt_secs(*samples.last().unwrap()),
            samples.len(),
            iters_per_sample,
        );
        append_json_record(
            &self.group,
            &self.id,
            samples[0],
            mean,
            *samples.last().unwrap(),
            samples.len(),
            iters_per_sample,
        );
    }
}

/// Append one JSON-lines record to the file named by `CRITERION_JSON`
/// (no-op when unset). Failures to write are reported but never fail the
/// bench run.
fn append_json_record(
    group: &str,
    id: &str,
    min: f64,
    mean: f64,
    max: f64,
    samples: usize,
    iters_per_sample: u64,
) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let line = format!(
        "{{\"group\":\"{}\",\"id\":\"{}\",\"min_s\":{:e},\"mean_s\":{:e},\"max_s\":{:e},\
         \"samples\":{},\"iters_per_sample\":{}}}\n",
        esc(group),
        esc(id),
        min,
        mean,
        max,
        samples,
        iters_per_sample
    );
    use std::io::Write as _;
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = result {
        eprintln!("criterion: cannot append to CRITERION_JSON={path}: {e}");
    }
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

#[derive(Debug, Clone)]
struct MeasurementConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for MeasurementConfig {
    fn default() -> MeasurementConfig {
        MeasurementConfig {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            // Cargo passes `--bench` only when invoked as `cargo bench`;
            // under `cargo test --benches` (no flag) or an explicit
            // `--test`, run each body exactly once as a smoke test.
            test_mode: !std::env::args().any(|a| a == "--bench"),
        }
    }
}

/// The benchmark manager.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    cfg: MeasurementConfig,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.cfg.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.cfg.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.cfg.warm_up_time = d;
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            cfg: self.cfg.clone(),
            name: name.into(),
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let cfg = self.cfg.clone();
        run_one(&cfg, "criterion", &id.into_benchmark_id().id, f);
        self
    }

    /// Entry point used by `criterion_main!`: honor `--bench`/`--test`
    /// flags that cargo passes to `harness = false` binaries.
    pub fn final_summary(&self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(cfg: &MeasurementConfig, group: &str, id: &str, mut f: F) {
    let mut b = Bencher {
        cfg,
        group: group.to_owned(),
        id: id.to_owned(),
    };
    f(&mut b);
}

/// A named group of related benchmarks. Holds its own copy of the
/// measurement config so per-group overrides actually take effect.
pub struct BenchmarkGroup<'a> {
    cfg: MeasurementConfig,
    name: String,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.cfg.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(&self.cfg, &self.name, &id.into_benchmark_id().id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        run_one(&self.cfg, &self.name, &id.id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declare a group of benchmark functions, optionally with a configured
/// `Criterion` (`name = …; config = …; targets = …` form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
