//! Quickstart: the paper's §3 worked example, end to end.
//!
//! Reproduces Figure 2 exactly: two company-financials sources with
//! conflicting contexts, the ancillary exchange-rate web source, the naive
//! (wrong, empty) answer, the mediated 3-way union, and the correct answer
//! ⟨'NTT', 9 600 000⟩.
//!
//! Run with: `cargo run --example quickstart`

use coin::core::fixtures::figure2_system;

fn main() {
    let sys = figure2_system();

    println!("=== The COntext INterchange Mediator Prototype (SIGMOD '97) ===\n");
    println!("Sources registered with the mediation services:");
    for (source, table, schema) in sys.dictionary().listing() {
        let cols: Vec<String> = schema
            .columns
            .iter()
            .map(|c| {
                format!(
                    "{} {}",
                    c.name.rsplit_once('.').map_or(c.name.as_str(), |(_, b)| b),
                    c.ty.name()
                )
            })
            .collect();
        println!("  {source}.{table}({})", cols.join(", "));
    }

    println!("\nSource contents (Figure 2):");
    for table in ["r1", "r2"] {
        let (t, _) = sys.query_naive(&format!("SELECT * FROM {table}")).unwrap();
        println!("-- {table} --\n{}", t.render());
    }

    // The receiver's query, posed under the assumption that there are no
    // conflicts between sources whatsoever (paper §1).
    let q1 = "SELECT r1.cname, r1.revenue FROM r1, r2 \
              WHERE r1.cname = r2.cname AND r1.revenue > r2.expenses";
    println!("Receiver query Q1 (context c_recv — USD, scale 1):\n  {q1}\n");

    // Naive execution: the (empty) answer "is clearly not a correct answer
    // since the revenue of NTT … is numerically larger than the expenses
    // reported in r2" (paper §3).
    let (naive, _) = sys.query_naive(q1).unwrap();
    println!("Naive execution (no mediation): {} rows", naive.rows.len());

    // Context mediation: detect and resolve the conflicts.
    let answer = sys.query(q1, "c_recv").unwrap();
    println!("\nThe context mediator rewrote Q1 into:");
    for (i, branch) in answer.mediated.query.branches().iter().enumerate() {
        if i > 0 {
            println!("UNION");
        }
        println!("  {branch}");
    }
    println!("\nMediation explanation:\n{}", answer.mediated.explain());

    println!("Mediated answer:\n{}", answer.table.render());
    println!(
        "NTT's revenue is reported as {} (= 1,000,000 × 1,000 × 0.0096) in the \
         receiver's context,\nexactly as in the paper.",
        answer.table.rows[0][1].render()
    );

    assert_eq!(answer.table.rows.len(), 1);
    assert_eq!(answer.table.rows[0][0], coin::rel::Value::str("NTT"));
    assert_eq!(
        answer.table.rows[0][1],
        coin::rel::Value::Float(9_600_000.0)
    );
    println!("\nOK: answer matches the paper.");
}
