//! EX-SCALE: the scalability and extensibility claims, quantified.
//!
//! "The approach is scalable because the complexity of creating and
//! administering the interoperation services do not increase exponentially
//! with the number of participating sources … It is extensible because
//! changes within any system can be effected by corresponding changes in
//! local elevation axioms or context theory and do not have adverse effects
//! on other parts of the larger system." (paper §1)
//!
//! This binary prints the administration-size table — COIN context axioms
//! (O(n)) versus a-priori pairwise integration rules (O(n²)) — and
//! demonstrates extensibility: adding source n+1 touches a constant number
//! of statements and leaves existing mediations byte-identical.
//!
//! Run with: `cargo run --example scalability`

use coin::core::baseline::PairwiseIntegration;
use coin::core::fixtures::{add_synthetic_source, synthetic_system, Rng};

fn main() {
    println!("=== Administration cost: COIN contexts vs pairwise integration ===\n");
    println!(
        "{:>8} {:>14} {:>16} {:>10}",
        "sources", "COIN axioms", "pairwise rules", "ratio"
    );
    for n in [2usize, 4, 8, 16, 32, 64] {
        let sys = synthetic_system(n, 1, 7);
        let coin_axioms = sys.axiom_count();
        let pairwise =
            PairwiseIntegration::derive(sys.domain(), sys.contexts(), "companyFinancials").unwrap();
        let pw = pairwise.statement_count();
        println!(
            "{:>8} {:>14} {:>16} {:>9.1}x",
            n,
            coin_axioms,
            pw,
            pw as f64 / coin_axioms as f64
        );
    }

    println!("\n=== Extensibility: adding source n+1 ===\n");
    let mut sys = synthetic_system(8, 4, 7);
    let q = "SELECT f.cname, f.amount FROM fin3 f WHERE f.amount > 1000";
    let before_axioms = sys.axiom_count();
    let before_sql = sys.mediate(q, "c_recv").unwrap().query.to_string();

    let mut rng = Rng::new(99);
    add_synthetic_source(&mut sys, 8, 4, &mut rng);
    let after_axioms = sys.axiom_count();
    let after_sql = sys.mediate(q, "c_recv").unwrap().query.to_string();

    println!("axioms before: {before_axioms}");
    println!(
        "axioms after : {after_axioms}  (+{} for the new source)",
        after_axioms - before_axioms
    );
    println!(
        "existing mediation unchanged: {}",
        if before_sql == after_sql {
            "yes (byte-identical)"
        } else {
            "NO — regression!"
        }
    );
    assert_eq!(before_sql, after_sql);

    // The new source is immediately queryable.
    let answer = sys
        .query("SELECT f.cname, f.amount FROM fin8 f", "c_recv")
        .unwrap();
    println!(
        "new source immediately queryable: {} rows through mediation",
        answer.table.rows.len()
    );

    println!("\nOK: scalability and extensibility demonstrated.");
}
