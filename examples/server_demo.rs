//! The Figure 1 architecture, live: mediation services behind HTTP, an
//! ODBC-style client, and the HTML QBE interface.
//!
//! Starts the server on an ephemeral port, connects as a receiver in
//! context `c_recv`, browses the dictionary, runs the §3 query naively and
//! mediated, asks for an explanation, and fetches the QBE form — the same
//! access paths the prototype offered to Netscape and ODBC applications.
//!
//! Run with: `cargo run --example server_demo`

use std::sync::Arc;

use coin::core::fixtures::figure2_system;
use coin::server::{http, start_server, Connection};

const Q1: &str = "SELECT r1.cname, r1.revenue FROM r1, r2 \
                  WHERE r1.cname = r2.cname AND r1.revenue > r2.expenses";

fn main() {
    let system = Arc::new(figure2_system());
    let server = start_server(Arc::clone(&system), "127.0.0.1:0").unwrap();
    println!("mediation server listening on http://{}", server.addr);

    // ---- the ODBC-style client ------------------------------------------
    let conn = Connection::open(server.addr, "c_recv");
    println!("\nDictionary service:");
    for t in conn.dictionary().unwrap() {
        let cols: Vec<String> = t
            .columns
            .iter()
            .map(|(n, ty)| format!("{n} {ty}"))
            .collect();
        println!("  {}.{}({})", t.source, t.table, cols.join(", "));
    }

    println!("\nQ1 executed naively (no mediation):");
    let naive = conn.naive_statement().execute(Q1).unwrap();
    println!("  {} rows", naive.len());

    println!("\nQ1 through the context mediator:");
    let rs = conn.statement().execute(Q1).unwrap();
    for row in &rs.rows {
        let cells: Vec<String> = row.iter().map(|v| v.render()).collect();
        println!("  {}", cells.join(" | "));
    }
    println!(
        "\nmediated SQL (server-reported):\n  {}",
        rs.mediated_sql.as_deref().unwrap()
    );

    println!("\nExplain mode:");
    let (_sql, explanation) = conn.explain(Q1).unwrap();
    for line in explanation.lines() {
        println!("  {line}");
    }

    // ---- the QBE HTML interface -------------------------------------------
    let form = http::get(&server.addr, "/qbe").unwrap();
    println!(
        "\nGET /qbe serves the Query-By-Example form ({} bytes of HTML).",
        form.len()
    );
    let answer = http::post(
        &server.addr,
        "/qbe",
        "application/x-www-form-urlencoded",
        b"table=r1&context=c_recv&show_cname=on&show_revenue=on&cond_currency=%3DJPY",
    )
    .unwrap();
    let html = String::from_utf8_lossy(&answer);
    println!(
        "POST /qbe (currency = JPY) returns an HTML answer table ({} bytes){}",
        answer.len(),
        if html.contains("9600000") {
            " containing NTT at 9,600,000 USD."
        } else {
            "."
        }
    );

    assert_eq!(rs.len(), 1);
    assert!(html.contains("9600000"));
    server.stop();
    println!("\nOK: architecture demo complete; server stopped.");
}
