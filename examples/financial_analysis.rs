//! Financial-analysis decision support (paper §4).
//!
//! "Together with our industry partners, we are currently deploying our
//! technology in several experimental applications, an example of which is
//! the area of financial analysis decision support (profit and loss
//! analysis, and marketing intelligence)."
//!
//! Scenario: an analyst in New York (USD, units) runs profit & loss
//! analysis over three autonomous filings databases — a US one (USD,
//! units), a Tokyo one (JPY, thousands), and a Frankfurt one (EUR,
//! millions) — plus the exchange-rate service. The analyst's SQL never
//! mentions currencies or scale factors; mediation inserts all conversions.
//!
//! Run with: `cargo run --example financial_analysis`

use coin::core::system::CoinSystem;
use coin::core::{ContextTheory, Conversion, Elevation, ModifierSpec};
use coin::rel::{Catalog, ColumnType, Schema, Table, Value};
use coin::wrapper::RelationalSource;

fn build_system() -> CoinSystem {
    let (domain, _) = coin::core::model::figure2_domain();
    let mut sys = CoinSystem::new(domain);
    sys.add_conversion("scaleFactor", Conversion::Ratio)
        .unwrap();
    sys.add_conversion(
        "currency",
        Conversion::Lookup {
            relation: "rates".into(),
            from_col: "fromCur".into(),
            to_col: "toCur".into(),
            factor_col: "rate".into(),
        },
    )
    .unwrap();

    // ---- three filings databases in three contexts ----------------------
    let us = Table::from_rows(
        "us_filings",
        Schema::of(&[
            ("company", ColumnType::Str),
            ("sector", ColumnType::Str),
            ("revenue", ColumnType::Int),
            ("costs", ColumnType::Int),
        ]),
        vec![
            vec![
                "IBM".into(),
                "tech".into(),
                Value::Int(81_700_000_000i64),
                Value::Int(73_400_000_000i64),
            ],
            vec![
                "GE".into(),
                "industrial".into(),
                Value::Int(90_800_000_000i64),
                Value::Int(82_000_000_000i64),
            ],
            vec![
                "Ford".into(),
                "auto".into(),
                Value::Int(146_900_000_000i64),
                Value::Int(140_100_000_000i64),
            ],
        ],
    );
    let tokyo = Table::from_rows(
        "tokyo_filings",
        Schema::of(&[
            ("company", ColumnType::Str),
            ("sector", ColumnType::Str),
            ("revenue", ColumnType::Int),
            ("costs", ColumnType::Int),
        ]),
        // JPY, thousands.
        vec![
            vec![
                "NTT".into(),
                "tech".into(),
                Value::Int(9_700_000_000i64),
                Value::Int(8_900_000_000i64),
            ],
            vec![
                "Toyota".into(),
                "auto".into(),
                Value::Int(12_700_000_000i64),
                Value::Int(11_600_000_000i64),
            ],
            vec![
                "Sony".into(),
                "tech".into(),
                Value::Int(5_700_000_000i64),
                Value::Int(5_500_000_000i64),
            ],
        ],
    );
    let frankfurt = Table::from_rows(
        "frankfurt_filings",
        Schema::of(&[
            ("company", ColumnType::Str),
            ("sector", ColumnType::Str),
            ("revenue", ColumnType::Int),
            ("costs", ColumnType::Int),
        ]),
        // EUR, millions.
        vec![
            vec![
                "Siemens".into(),
                "industrial".into(),
                Value::Int(60_000i64),
                Value::Int(56_500i64),
            ],
            vec![
                "VW".into(),
                "auto".into(),
                Value::Int(113_000i64),
                Value::Int(110_000i64),
            ],
        ],
    );
    let rates = Table::from_rows(
        "rates",
        Schema::of(&[
            ("fromCur", ColumnType::Str),
            ("toCur", ColumnType::Str),
            ("rate", ColumnType::Float),
        ]),
        vec![
            vec!["JPY".into(), "USD".into(), Value::Float(0.0096)],
            vec!["EUR".into(), "USD".into(), Value::Float(1.18)],
            vec!["USD".into(), "JPY".into(), Value::Float(104.0)],
            vec!["USD".into(), "EUR".into(), Value::Float(0.85)],
        ],
    );

    sys.add_source(RelationalSource::new("sec", Catalog::new().with_table(us)))
        .unwrap();
    sys.add_source(RelationalSource::new(
        "tse",
        Catalog::new().with_table(tokyo),
    ))
    .unwrap();
    sys.add_source(RelationalSource::new(
        "dax",
        Catalog::new().with_table(frankfurt),
    ))
    .unwrap();
    sys.add_source(RelationalSource::new(
        "forex",
        Catalog::new().with_table(rates),
    ))
    .unwrap();

    // ---- contexts -------------------------------------------------------
    for (name, cur, scale) in [
        ("c_us", "USD", 1i64),
        ("c_tokyo", "JPY", 1000),
        ("c_frankfurt", "EUR", 1_000_000),
        ("c_analyst", "USD", 1),
    ] {
        sys.add_context(
            ContextTheory::new(name)
                .set("companyFinancials", "currency", ModifierSpec::constant(cur))
                .set(
                    "companyFinancials",
                    "scaleFactor",
                    ModifierSpec::constant(scale),
                ),
        )
        .unwrap();
    }

    // ---- elevation axioms ------------------------------------------------
    for (table, ctx) in [
        ("us_filings", "c_us"),
        ("tokyo_filings", "c_tokyo"),
        ("frankfurt_filings", "c_frankfurt"),
    ] {
        sys.add_elevation(
            Elevation::new(table, ctx)
                .column("company", "companyName")
                .column("revenue", "companyFinancials")
                .column("costs", "companyFinancials"),
        )
        .unwrap();
    }
    sys.add_elevation(
        Elevation::new("rates", "c_analyst")
            .column("fromCur", "currencyType")
            .column("toCur", "currencyType")
            .column("rate", "exchangeRate"),
    )
    .unwrap();
    sys
}

fn main() {
    let sys = build_system();
    println!("=== Profit & loss analysis across three filing systems ===\n");

    // 1. Per-exchange profit in the analyst's context.
    for table in ["us_filings", "tokyo_filings", "frankfurt_filings"] {
        let sql = format!("SELECT f.company, f.revenue - f.costs AS profit_usd FROM {table} f");
        let answer = sys.query(&sql, "c_analyst").unwrap();
        println!(
            "-- {table} (converted to USD, units) --\n{}",
            answer.table.render()
        );
    }

    // 2. Profitable Tokyo companies by US standards: P&L > $50M.
    let answer = sys
        .query(
            "SELECT f.company, f.revenue - f.costs AS profit FROM tokyo_filings f \
             WHERE f.revenue - f.costs > 50000000",
            "c_analyst",
        )
        .unwrap();
    println!(
        "-- Tokyo companies with P&L > $50M --\n{}",
        answer.table.render()
    );
    assert!(
        answer
            .table
            .rows
            .iter()
            .any(|r| r[0] == Value::str("Toyota")),
        "Toyota clears $50M: 1.1e9 kJPY × 0.0096"
    );

    // 3. Cross-market comparison: auto makers, Frankfurt vs Tokyo revenues.
    let answer = sys
        .query(
            "SELECT a.company, b.company FROM frankfurt_filings a, tokyo_filings b \
             WHERE a.sector = 'auto' AND b.sector = 'auto' AND a.revenue > b.revenue",
            "c_analyst",
        )
        .unwrap();
    println!(
        "-- Frankfurt auto maker out-earning a Tokyo auto maker --\n{}",
        answer.table.render()
    );
    // VW (113,000 M€ ≈ $133.3B) out-earns Toyota (12.7B kJPY ≈ $121.9B).
    assert_eq!(answer.table.rows.len(), 1);

    // 4. Sector aggregation over one market, in analyst units.
    let answer = sys
        .query(
            "SELECT f.sector, SUM(f.revenue) AS total, COUNT(*) AS n \
             FROM tokyo_filings f GROUP BY f.sector ORDER BY f.sector",
            "c_analyst",
        )
        .unwrap();
    println!(
        "-- Tokyo revenue by sector (USD) --\n{}",
        answer.table.render()
    );
    assert_eq!(answer.table.rows.len(), 2);

    // The tech sector total: (9.7e9 + 5.7e9) kJPY × 0.0096 = 147.84e9 ×
    // 0.0096 … in USD units.
    let tech = answer
        .table
        .rows
        .iter()
        .find(|r| r[0] == Value::str("tech"))
        .unwrap();
    let expected = (9_700_000_000f64 + 5_700_000_000f64) * 1000.0 * 0.0096;
    assert!((tech[1].as_f64().unwrap() - expected).abs() < 1.0);

    println!("OK: all P&L analyses verified.");
}
