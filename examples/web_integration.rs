//! Web-source integration (paper §2 and §4).
//!
//! "The sources we consider range from on-line databases (e.g. an Oracle
//! database) to semi-structured Web-sites … sites reporting security prices
//! on the various stock exchanges at regular intervals [serve] as a primary
//! source of information … sites reporting currency exchange rates are used
//! to support conversion between monetary amounts."
//!
//! This example builds a simulated stock-quote web site (an index page
//! linking to per-exchange listings), writes a wrapper specification in the
//! declarative language of [Qu96] — a transition network plus extraction
//! patterns — registers it next to the exchange-rate service, and runs
//! mediated queries over prices quoted in different currencies.
//!
//! Run with: `cargo run --example web_integration`

use coin::core::system::CoinSystem;
use coin::core::{ContextTheory, Conversion, Elevation, ModifierSpec};
use coin::wrapper::{figure2_rates_source, SimWeb, WebSource, WrapperSpec};

fn main() {
    // ---- the simulated web -------------------------------------------------
    let web = SimWeb::new();
    web.mount_static(
        "http://quotes.example/index",
        r#"<html><h1>World Markets</h1>
           <ul>
             <li><a href="http://quotes.example/nyse">New York</a></li>
             <li><a href="http://quotes.example/tse">Tokyo</a></li>
           </ul></html>"#,
    );
    web.mount_static(
        "http://quotes.example/nyse",
        r#"<html><h1>NYSE</h1><table>
           <tr><td>IBM</td><td>120.50</td></tr>
           <tr><td>GE</td><td>60.25</td></tr>
           <tr><td>F</td><td>32.75</td></tr>
           </table></html>"#,
    );
    web.mount_static(
        "http://quotes.example/tse",
        r#"<html><h1>TSE</h1><table>
           <tr><td>NTT</td><td>8800</td></tr>
           <tr><td>SONY</td><td>11200</td></tr>
           </table></html>"#,
    );

    // ---- the wrapper specification [Qu96] ----------------------------------
    let spec_text = r#"
# Stock quotes wrapper: index page -> per-exchange listing pages.
EXPORT quotes(exchange STR, symbol STR, price FLOAT)
START index "http://quotes.example/index"
PAGE index FOLLOW listing LINKS "<a href=\"(?P<url>[^\"]+)\">"
PAGE listing MATCH ONE "<h1>(?P<exchange>\w+)</h1>"
PAGE listing MATCH MANY "<tr><td>(?P<symbol>[A-Z]+)</td><td>(?P<price>[0-9.]+)</td></tr>"
"#;
    println!("Wrapper specification (transition network + patterns):{spec_text}");
    let spec = WrapperSpec::parse(spec_text).unwrap();

    // ---- assemble the COIN system -------------------------------------------
    let (domain, _) = coin::core::model::figure2_domain();
    let mut sys = CoinSystem::new(domain);
    sys.add_conversion("scaleFactor", Conversion::Ratio)
        .unwrap();
    sys.add_conversion(
        "currency",
        Conversion::Lookup {
            relation: "r3".into(),
            from_col: "fromCur".into(),
            to_col: "toCur".into(),
            factor_col: "rate".into(),
        },
    )
    .unwrap();
    sys.add_source(WebSource::new("quotes_site", spec, web.clone()))
        .unwrap();
    sys.add_source(figure2_rates_source(&web)).unwrap();

    // Quotes context: prices are quoted in the exchange's local currency —
    // a data-dependent context ("JPY when the exchange is TSE, else USD").
    sys.add_context(
        ContextTheory::new("c_quotes")
            .set(
                "companyFinancials",
                "currency",
                ModifierSpec::if_attr_eq(
                    "exchange",
                    "TSE",
                    ModifierSpec::constant("JPY"),
                    ModifierSpec::constant("USD"),
                ),
            )
            .set(
                "companyFinancials",
                "scaleFactor",
                ModifierSpec::constant(1i64),
            ),
    )
    .unwrap();
    sys.add_context(
        ContextTheory::new("c_recv")
            .set(
                "companyFinancials",
                "currency",
                ModifierSpec::constant("USD"),
            )
            .set(
                "companyFinancials",
                "scaleFactor",
                ModifierSpec::constant(1i64),
            ),
    )
    .unwrap();
    sys.add_elevation(
        Elevation::new("quotes", "c_quotes")
            .column("symbol", "companyName")
            .column("price", "companyFinancials"),
    )
    .unwrap();
    sys.add_elevation(
        Elevation::new("r3", "c_recv")
            .column("fromCur", "currencyType")
            .column("toCur", "currencyType")
            .column("rate", "exchangeRate"),
    )
    .unwrap();

    // ---- mediated queries over the wrapped site ------------------------------
    println!("All quotes in the receiver's context (USD):");
    let answer = sys
        .query(
            "SELECT q.exchange, q.symbol, q.price FROM quotes q",
            "c_recv",
        )
        .unwrap();
    println!("{}", answer.table.render());
    println!("Mediated SQL:\n  {}\n", answer.mediated.query);

    // NTT at 8800 JPY ≈ $84.48 must appear converted.
    let ntt = answer
        .table
        .rows
        .iter()
        .find(|r| r[1] == coin::rel::Value::str("NTT"))
        .expect("NTT quote present");
    let price = ntt[2].as_f64().unwrap();
    assert!((price - 8800.0 * 0.0096).abs() < 1e-9, "NTT at ${price}");

    println!("Stocks above $50 in receiver terms:");
    let answer = sys
        .query(
            "SELECT q.symbol, q.price FROM quotes q WHERE q.price > 50",
            "c_recv",
        )
        .unwrap();
    println!("{}", answer.table.render());
    // IBM 120.5, GE 60.25, NTT 84.48, SONY 107.52 — F (32.75) excluded.
    assert_eq!(answer.table.rows.len(), 4);

    println!(
        "Web pages fetched so far: {} (index + 2 listings per wrapper run)",
        web.fetch_count()
    );

    // ---- the QBE front end over the same system -----------------------------
    let form: std::collections::BTreeMap<String, String> = [
        ("table", "quotes"),
        ("context", "c_recv"),
        ("show_symbol", "on"),
        ("show_price", "on"),
        ("cond_exchange", "=TSE"),
    ]
    .iter()
    .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
    .collect();
    let (sql, ctx) = coin::server::qbe::form_to_sql(&form).unwrap();
    println!("QBE form submission translates to: {sql}  [context {ctx}]");
    let answer = sys.query(&sql, &ctx).unwrap();
    println!("{}", answer.table.render());
    assert_eq!(answer.table.rows.len(), 2);

    println!("OK: web integration verified.");
}
